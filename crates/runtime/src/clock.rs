//! Time sources for the runtime.
//!
//! The timer service measures `time.duration` between snapshots. Two
//! clock implementations are provided:
//!
//! * [`Clock::real`] — wall-clock time (monotonic), used by the overhead
//!   experiments (Figure 3), where the *measured* quantity is the real
//!   cost of snapshot processing.
//! * [`Clock::virtual_clock`] — a deterministic, manually advanced clock,
//!   used by the mini-app workload models (the CleverLeaf and ParaDiS
//!   proxies). This replaces the paper's cluster-scale timings with a
//!   reproducible laptop-scale substitute while exercising the identical
//!   snapshot/aggregation code paths (see DESIGN.md §3).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

#[derive(Clone)]
enum Inner {
    Real(Instant),
    Virtual(Arc<AtomicU64>),
}

/// A nanosecond clock, either real (monotonic) or virtual (manual).
#[derive(Clone)]
pub struct Clock {
    inner: Inner,
}

impl Clock {
    /// Monotonic wall-clock time, starting at 0 on creation.
    pub fn real() -> Clock {
        Clock {
            inner: Inner::Real(Instant::now()),
        }
    }

    /// A virtual clock starting at 0; advances only via [`Clock::advance_ns`].
    pub fn virtual_clock() -> Clock {
        Clock {
            inner: Inner::Virtual(Arc::new(AtomicU64::new(0))),
        }
    }

    /// Current time in nanoseconds since clock creation.
    pub fn now_ns(&self) -> u64 {
        match &self.inner {
            Inner::Real(base) => base.elapsed().as_nanos() as u64,
            Inner::Virtual(t) => t.load(Ordering::Relaxed),
        }
    }

    /// Advance a virtual clock. No-op on a real clock (real time cannot
    /// be steered).
    pub fn advance_ns(&self, ns: u64) {
        if let Inner::Virtual(t) = &self.inner {
            t.fetch_add(ns, Ordering::Relaxed);
        }
    }

    /// True for virtual clocks.
    pub fn is_virtual(&self) -> bool {
        matches!(self.inner, Inner::Virtual(_))
    }
}

impl std::fmt::Debug for Clock {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.inner {
            Inner::Real(_) => write!(f, "Clock::Real({} ns)", self.now_ns()),
            Inner::Virtual(_) => write!(f, "Clock::Virtual({} ns)", self.now_ns()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn virtual_clock_is_deterministic() {
        let clock = Clock::virtual_clock();
        assert_eq!(clock.now_ns(), 0);
        clock.advance_ns(1500);
        clock.advance_ns(500);
        assert_eq!(clock.now_ns(), 2000);
        assert!(clock.is_virtual());
    }

    #[test]
    fn virtual_clock_clones_share_time() {
        let clock = Clock::virtual_clock();
        let clone = clock.clone();
        clock.advance_ns(42);
        assert_eq!(clone.now_ns(), 42);
    }

    #[test]
    fn real_clock_advances_on_its_own() {
        let clock = Clock::real();
        assert!(!clock.is_virtual());
        let a = clock.now_ns();
        std::thread::sleep(std::time::Duration::from_millis(2));
        let b = clock.now_ns();
        assert!(b > a);
        // advance_ns is a no-op
        clock.advance_ns(1_000_000_000);
        assert!(clock.now_ns() < 60_000_000_000);
    }
}
