//! The per-process Caliper runtime instance and its channels.
//!
//! A [`Caliper`] owns the process-wide state: attribute dictionary,
//! context tree, and clock. Data collection happens in [`Channel`]s —
//! independent (configuration, services, output dataset) bundles that
//! observe the same program annotations. A process usually has one
//! channel, but several can run *simultaneously*: e.g. a low-overhead
//! sampled profile and a detailed event-aggregated profile from a
//! single run — the paper's "we only changed the aggregation schemes"
//! workflow (§VI-F) without even re-running.
//!
//! In a distributed-memory program each (simulated) process creates its
//! own `Caliper`; there is no inter-process communication at runtime
//! (§IV-A) — cross-process aggregation happens in post-processing.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use caliper_data::{
    Attribute, AttributeStore, ContextTree, MetricsRegistry, Properties, SnapshotRecord, Value,
    ValueType,
};
use caliper_format::Dataset;
use parking_lot::{Mutex, RwLock};

use crate::clock::Clock;
use crate::config::{Config, ConfigError};
use crate::journal::{JournalConfig, JournalSink};
use crate::thread::ThreadScope;

/// One data-collection channel: a configuration profile plus the
/// process dataset its per-thread services flush into.
pub struct Channel {
    name: String,
    config: Config,
    collected: Mutex<Dataset>,
    total_snapshots: AtomicU64,
    flushed_threads: AtomicU64,
    /// Problems found validating `config` (or opening the journal).
    /// Affected services are skipped instead of panicking; the errors
    /// stay inspectable here and fail [`Caliper::try_new`].
    config_errors: Vec<ConfigError>,
    /// The channel's write-ahead snapshot journal, when configured.
    journal: Option<Arc<JournalSink>>,
    /// Self-instrumentation registry (`metrics.enable = true`). Each
    /// channel gets its own instance — not the process global — so a
    /// dogfooded profile only reports its own channel's activity and
    /// parallel tests cannot bleed counts into each other.
    metrics: Option<Arc<MetricsRegistry>>,
}

impl Channel {
    fn new(name: &str, config: Config, store: Arc<AttributeStore>, tree: Arc<ContextTree>) -> Channel {
        let mut config_errors = Vec::new();
        let mut journal = None;
        match config.validate() {
            Ok(()) => {
                // validate() already vetted the journal keys, so
                // from_config cannot fail here; opening the file can.
                if let Ok(Some(journal_config)) = JournalConfig::from_config(&config) {
                    match JournalSink::create(&journal_config, &store, &tree) {
                        Ok(sink) => journal = Some(sink),
                        Err(e) => config_errors.push(ConfigError::for_key(
                            "journal.path",
                            format!("cannot open '{}': {e}", journal_config.path.display()),
                        )),
                    }
                }
            }
            Err(e) => config_errors.push(e),
        }
        let metrics = config
            .get_bool("metrics.enable", false)
            .then(|| Arc::new(MetricsRegistry::new()));
        Channel {
            name: name.to_string(),
            config,
            collected: Mutex::new(Dataset::with_context(store, tree)),
            total_snapshots: AtomicU64::new(0),
            flushed_threads: AtomicU64::new(0),
            config_errors,
            journal,
            metrics,
        }
    }

    /// The channel's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The channel's configuration profile.
    pub fn config(&self) -> &Config {
        &self.config
    }

    /// Problems found validating this channel's profile. Non-empty
    /// means some services were skipped; [`Caliper::try_new`] surfaces
    /// the first one as an error.
    pub fn config_errors(&self) -> &[ConfigError] {
        &self.config_errors
    }

    /// The channel's write-ahead snapshot journal, when configured.
    pub fn journal(&self) -> Option<&Arc<JournalSink>> {
        self.journal.as_ref()
    }

    /// The channel's self-instrumentation registry, when the profile
    /// sets `metrics.enable = true`. `None` means metrics are off and
    /// the snapshot hot path performs zero extra atomic operations.
    pub fn metrics(&self) -> Option<&Arc<MetricsRegistry>> {
        self.metrics.as_ref()
    }

    /// Set a dataset-global metadata value on this channel.
    pub fn set_global(&self, label: &str, value: impl Into<Value>) {
        let mut collected = self.collected.lock();
        collected.set_global(label, value);
        if let (Some(journal), Some(global)) = (&self.journal, collected.globals.last()) {
            journal.append_globals(global);
        }
    }

    /// Record flushed per-thread output into the channel dataset.
    pub(crate) fn collect(&self, records: Dataset, snapshots: u64) {
        let mut collected = self.collected.lock();
        collected.records.extend(records.records);
        collected.globals.extend(records.globals);
        self.total_snapshots.fetch_add(snapshots, Ordering::Relaxed);
        self.flushed_threads.fetch_add(1, Ordering::Relaxed);
        // Flush is a cold path (once per thread), so the by-name
        // registry lookup is fine here.
        if let Some(m) = &self.metrics {
            m.counter("runtime.flushed_threads").inc();
        }
    }

    /// Take the collected dataset (e.g. to write a `.cali` file),
    /// leaving an empty dataset behind. Thread scopes must be flushed
    /// first. Drains the journal too, so an orderly shutdown leaves the
    /// journal complete as well.
    pub fn take_dataset(&self) -> Dataset {
        if let Some(journal) = &self.journal {
            journal.flush();
        }
        if let Some(metrics) = &self.metrics {
            if let Some(journal) = &self.journal {
                sample_journal_stats(metrics, &journal.stats());
            }
        }
        let mut collected = self.collected.lock();
        if let Some(metrics) = &self.metrics {
            append_metric_records(&mut collected, metrics);
        }
        let store = Arc::clone(&collected.store);
        let tree = Arc::clone(&collected.tree);
        std::mem::replace(&mut *collected, Dataset::with_context(store, tree))
    }

    /// Run the channel's configured flush-time report (`report.config`
    /// query over the collected dataset, without consuming it). See
    /// [`Caliper::report`].
    pub fn report(&self) -> Option<String> {
        let query = self.config.get("report.config")?.to_string();
        let collected = self.collected.lock();
        Some(match caliper_query::run_query(&collected, &query) {
            Ok(result) => result.render(),
            Err(e) => format!("report error: {e}\n"),
        })
    }

    /// Total snapshots processed by flushed thread scopes on this
    /// channel (Table I's "snapshots" column).
    pub fn total_snapshots(&self) -> u64 {
        self.total_snapshots.load(Ordering::Relaxed)
    }

    /// Number of thread scopes that have flushed into this channel.
    pub fn flushed_threads(&self) -> u64 {
        self.flushed_threads.load(Ordering::Relaxed)
    }
}

/// Fold a journal sink's accounting into the channel registry as
/// gauges, so the dogfooded profile reports journal health (buffer
/// flushes, fsyncs, write errors, disabled sinks) alongside the
/// runtime counters. Called at dataset-take time — the journal keeps
/// its own counters internally, so the hot path pays nothing extra.
fn sample_journal_stats(metrics: &MetricsRegistry, stats: &crate::journal::JournalStats) {
    metrics.gauge("runtime.journal.appended").set(stats.appended);
    metrics.gauge("runtime.journal.durable").set(stats.durable);
    metrics.gauge("runtime.journal.flushes").set(stats.flushes);
    metrics
        .gauge("runtime.journal.forced_flushes")
        .set(stats.forced_flushes);
    metrics.gauge("runtime.journal.syncs").set(stats.syncs);
    metrics.gauge("runtime.journal.retries").set(stats.retries);
    metrics
        .gauge("runtime.journal.write_errors")
        .set(stats.write_errors);
    metrics
        .gauge("runtime.journal.disabled")
        .set(u64::from(stats.disabled));
}

/// Emit the registry as ordinary snapshot records — one per metric,
/// carrying `metric.name`, `metric.kind`, and `metric.value` — so a
/// dogfooded profile can be analysed with the same CalQL pipeline as
/// the program's own data, e.g.
/// `GROUP BY metric.name AGGREGATE sum(metric.value)`.
fn append_metric_records(collected: &mut Dataset, metrics: &MetricsRegistry) {
    let name_attr = collected.attribute("metric.name", ValueType::Str, Properties::AS_VALUE);
    let kind_attr = collected.attribute("metric.kind", ValueType::Str, Properties::AS_VALUE);
    let value_attr = collected.attribute(
        "metric.value",
        ValueType::UInt,
        Properties::AS_VALUE | Properties::AGGREGATABLE,
    );
    // snapshot() returns samples sorted by name, so the emitted records
    // are in a deterministic order.
    for sample in metrics.snapshot() {
        let mut rec = SnapshotRecord::new();
        rec.push_imm(name_attr.id(), Value::str(sample.name.as_str()));
        rec.push_imm(kind_attr.id(), Value::str(sample.kind.name()));
        rec.push_imm(value_attr.id(), Value::UInt(sample.value));
        collected.push(rec);
    }
}

impl std::fmt::Debug for Channel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Channel({}, {} snapshots)",
            self.name,
            self.total_snapshots()
        )
    }
}

/// A per-process Caliper runtime.
pub struct Caliper {
    store: Arc<AttributeStore>,
    tree: Arc<ContextTree>,
    clock: Clock,
    channels: RwLock<Vec<Arc<Channel>>>,
}

impl Caliper {
    /// Create a runtime with a real (monotonic) clock and one default
    /// channel running `config`.
    pub fn new(config: Config) -> Arc<Caliper> {
        Caliper::with_clock(config, Clock::real())
    }

    /// Create a runtime with an explicit clock (virtual clocks for
    /// deterministic workload models).
    pub fn with_clock(config: Config, clock: Clock) -> Arc<Caliper> {
        let store = Arc::new(AttributeStore::new());
        let tree = Arc::new(ContextTree::new());
        let default = Arc::new(Channel::new(
            "default",
            config,
            Arc::clone(&store),
            Arc::clone(&tree),
        ));
        Arc::new(Caliper {
            store,
            tree,
            clock,
            channels: RwLock::new(vec![default]),
        })
    }

    /// Like [`Caliper::new`], but fail up front when the profile is
    /// invalid instead of silently skipping the affected services.
    /// Embedding tools should prefer this so a typo'd `aggregate.ops`
    /// or unwritable `journal.path` is reported before any measurement.
    pub fn try_new(config: Config) -> Result<Arc<Caliper>, ConfigError> {
        Caliper::try_with_clock(config, Clock::real())
    }

    /// [`Caliper::try_new`] with an explicit clock.
    pub fn try_with_clock(config: Config, clock: Clock) -> Result<Arc<Caliper>, ConfigError> {
        let caliper = Caliper::with_clock(config, clock);
        let default = caliper.default_channel();
        match default.config_errors().first() {
            Some(e) => Err(e.clone()),
            None => Ok(caliper),
        }
    }

    /// The process attribute dictionary.
    pub fn store(&self) -> &Arc<AttributeStore> {
        &self.store
    }

    /// The process context tree.
    pub fn tree(&self) -> &Arc<ContextTree> {
        &self.tree
    }

    /// The runtime clock.
    pub fn clock(&self) -> &Clock {
        &self.clock
    }

    /// The default channel's configuration profile.
    pub fn config(&self) -> Config {
        self.default_channel().config.clone()
    }

    /// The default channel (created from the constructor's config).
    pub fn default_channel(&self) -> Arc<Channel> {
        Arc::clone(&self.channels.read()[0])
    }

    /// Create an additional data-collection channel. Thread scopes
    /// created *after* this call serve the new channel as well; existing
    /// scopes are unaffected.
    pub fn create_channel(&self, name: &str, config: Config) -> Arc<Channel> {
        let channel = Arc::new(Channel::new(
            name,
            config,
            Arc::clone(&self.store),
            Arc::clone(&self.tree),
        ));
        self.channels.write().push(Arc::clone(&channel));
        channel
    }

    /// All channels, in creation order (the default channel first).
    pub fn channels(&self) -> Vec<Arc<Channel>> {
        self.channels.read().clone()
    }

    /// Intern an attribute.
    ///
    /// # Panics
    ///
    /// Panics if `name` was already interned with a different type or
    /// properties — a programming error in the instrumented code. Use
    /// [`Caliper::try_attribute`] to handle the conflict instead.
    pub fn attribute(&self, name: &str, vtype: ValueType, props: Properties) -> Attribute {
        match self.try_attribute(name, vtype, props) {
            Ok(attr) => attr,
            Err(e) => panic!("{e}"),
        }
    }

    /// Intern an attribute, reporting a type/properties conflict with
    /// an earlier interning instead of panicking.
    pub fn try_attribute(
        &self,
        name: &str,
        vtype: ValueType,
        props: Properties,
    ) -> Result<Attribute, caliper_data::AttributeConflict> {
        self.store.create(name, vtype, props)
    }

    /// Intern a nested (begin/end) string attribute — the common case
    /// for source-code annotations.
    pub fn region_attribute(&self, name: &str) -> Attribute {
        self.attribute(name, ValueType::Str, Properties::NESTED)
    }

    /// Create a thread scope: the per-thread blackboard plus service
    /// instances for every current channel. Each monitored thread of
    /// the target program needs its own scope (real Caliper keeps this
    /// in thread-local storage; here the handle is explicit).
    pub fn make_thread_scope(self: &Arc<Self>) -> ThreadScope {
        ThreadScope::new(Arc::clone(self))
    }

    /// Set a dataset-global metadata value (e.g. `mpi.rank`) on every
    /// channel — process metadata belongs in every output dataset.
    pub fn set_global(&self, label: &str, value: impl Into<Value>) {
        let value = value.into();
        for channel in self.channels.read().iter() {
            channel.set_global(label, value.clone());
        }
    }

    /// Take the default channel's collected dataset.
    pub fn take_dataset(&self) -> Dataset {
        self.default_channel().take_dataset()
    }

    /// Run the default channel's flush-time report: if its profile sets
    /// `report.config` to a query, execute it over the collected
    /// dataset and return the rendered result (without consuming the
    /// dataset). Mirrors Caliper's runtime report service — a profile
    /// like
    ///
    /// ```text
    /// services = event,timer,aggregate,report
    /// report.config = SELECT function, sum#time.duration ORDER BY function
    /// ```
    ///
    /// prints a profile when the program ends. Returns `None` when no
    /// report is configured; query errors are returned as the rendered
    /// error text so a broken report never aborts the target program.
    pub fn report(&self) -> Option<String> {
        self.default_channel().report()
    }

    /// Total snapshots processed by the default channel (Table I's
    /// "snapshots" column).
    pub fn total_snapshots(&self) -> u64 {
        self.default_channel().total_snapshots()
    }

    /// Number of thread scopes that have flushed into the default
    /// channel.
    pub fn flushed_threads(&self) -> u64 {
        self.default_channel().flushed_threads()
    }
}

impl std::fmt::Debug for Caliper {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Caliper({} attrs, {} nodes, {} channels)",
            self.store.len(),
            self.tree.len(),
            self.channels.read().len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn globals_land_in_dataset() {
        let caliper = Caliper::with_clock(Config::baseline(), Clock::virtual_clock());
        caliper.set_global("mpi.rank", 3i64);
        caliper.set_global("experiment", "test");
        let ds = caliper.take_dataset();
        assert_eq!(ds.global("mpi.rank"), Some(Value::Int(3)));
        assert_eq!(ds.global("experiment"), Some(Value::str("test")));
        // take_dataset leaves an empty dataset
        assert!(caliper.take_dataset().globals.is_empty());
    }

    #[test]
    fn attribute_helpers_set_properties() {
        let caliper = Caliper::with_clock(Config::baseline(), Clock::virtual_clock());
        let region = caliper.region_attribute("function");
        assert!(region.is_nested());
        assert_eq!(region.value_type(), ValueType::Str);
        let metric = caliper.attribute(
            "bytes",
            ValueType::UInt,
            Properties::AS_VALUE | Properties::AGGREGATABLE,
        );
        assert!(metric.is_aggregatable());
    }

    #[test]
    fn report_runs_configured_query() {
        let config = Config::event_aggregate("function", "count,sum(time.duration)")
            .set("services", "event,timer,aggregate,report")
            .set(
                "report.config",
                "SELECT function, aggregate.count WHERE function ORDER BY function",
            );
        let caliper = Caliper::with_clock(config, Clock::virtual_clock());
        let function = caliper.region_attribute("function");
        let mut scope = caliper.make_thread_scope();
        for name in ["solve", "io", "solve"] {
            scope.begin(&function, name);
            scope.advance_time(1_000);
            scope.end(&function).unwrap();
        }
        scope.flush();
        let report = caliper.report().expect("report configured");
        assert!(report.contains("solve"), "{report}");
        assert!(report.contains("io"), "{report}");
        // Reporting does not consume the dataset.
        assert!(!caliper.take_dataset().is_empty());

        let no_report = Caliper::with_clock(Config::baseline(), Clock::virtual_clock());
        assert!(no_report.report().is_none());
    }

    #[test]
    fn report_errors_are_contained() {
        let config = Config::baseline().set("report.config", "AGGREGATE bogus(x)");
        let caliper = Caliper::with_clock(config, Clock::virtual_clock());
        let report = caliper.report().unwrap();
        assert!(report.contains("report error"), "{report}");
    }

    #[test]
    fn counters_service_reports_through_runtime() {
        let config = Config::new()
            .set("services", "event,counters,trace")
            .set("counters.ghz", "1.0")
            .set("counters.ipc", "2.0");
        let caliper = Caliper::with_clock(config, Clock::virtual_clock());
        let function = caliper.region_attribute("function");
        let mut scope = caliper.make_thread_scope();
        scope.begin(&function, "work");
        scope.advance_time(500);
        scope.end(&function).unwrap();
        scope.flush();
        let ds = caliper.take_dataset();
        let cycles = ds.store.find("cpu.cycles").unwrap();
        let instructions = ds.store.find("cpu.instructions").unwrap();
        // The end-event snapshot carries the 500 ns of work: 500 cycles
        // at 1 GHz, 1000 instructions at IPC 2.
        let flats: Vec<_> = ds.flat_records().collect();
        let end_snap = flats
            .iter()
            .find(|r| r.get(cycles.id()) == Some(&Value::UInt(500)))
            .expect("end snapshot with counter delta");
        assert_eq!(
            end_snap.get(instructions.id()),
            Some(&Value::UInt(1_000))
        );
    }

    #[test]
    fn channels_collect_independently() {
        // One run, two simultaneous schemes: a trace channel and an
        // aggregation channel.
        let caliper = Caliper::with_clock(Config::event_trace(), Clock::virtual_clock());
        let agg_channel = caliper.create_channel(
            "profile",
            Config::event_aggregate("function", "count,sum(time.duration)"),
        );
        let function = caliper.region_attribute("function");
        let mut scope = caliper.make_thread_scope();
        for _ in 0..5 {
            scope.begin(&function, "work");
            scope.advance_time(1_000);
            scope.end(&function).unwrap();
        }
        scope.flush();

        // Trace channel: one record per event (5 x begin+end = 10).
        let trace = caliper.take_dataset();
        assert_eq!(trace.len(), 10);
        // Aggregation channel: 2 keys (work / no function).
        let profile = agg_channel.take_dataset();
        assert_eq!(profile.len(), 2);
        assert_eq!(agg_channel.total_snapshots(), 10);
        assert_eq!(agg_channel.name(), "profile");
    }

    #[test]
    fn channels_can_differ_in_trigger_mode() {
        // Default channel samples; second channel is event-triggered.
        let caliper = Caliper::with_clock(
            Config::sampled_trace(1_000),
            Clock::virtual_clock(),
        );
        let events = caliper.create_channel("events", Config::event_trace());
        let function = caliper.region_attribute("function");
        let mut scope = caliper.make_thread_scope();
        scope.begin(&function, "work");
        scope.advance_time(10_000); // 10 sampling periods
        scope.end(&function).unwrap();
        scope.flush();

        assert_eq!(caliper.take_dataset().len(), 10); // samples
        assert_eq!(events.take_dataset().len(), 2); // begin + end
    }

    #[test]
    fn metrics_disabled_by_default_costs_nothing() {
        let caliper = Caliper::with_clock(Config::event_trace(), Clock::virtual_clock());
        assert!(caliper.default_channel().metrics().is_none());
        let function = caliper.region_attribute("function");
        let mut scope = caliper.make_thread_scope();
        scope.begin(&function, "x");
        scope.end(&function).unwrap();
        scope.flush();
        let ds = caliper.take_dataset();
        // No dogfood records, no metric.* attributes.
        assert_eq!(ds.len(), 2);
        assert!(ds.store.find("metric.name").is_none());
    }

    #[test]
    fn metrics_registry_dogfoods_into_dataset() {
        let config = Config::event_aggregate("function", "count,sum(time.duration)")
            .set("metrics.enable", "true");
        let caliper = Caliper::with_clock(config, Clock::virtual_clock());
        let function = caliper.region_attribute("function");
        let mut scope = caliper.make_thread_scope();
        for _ in 0..3 {
            scope.begin(&function, "work");
            scope.advance_time(1_000);
            scope.end(&function).unwrap();
        }
        scope.flush();

        let channel = caliper.default_channel();
        let metrics = channel.metrics().expect("metrics.enable = true");
        assert!(!metrics.is_empty());

        // The registry is emitted as snapshot records queryable with
        // the same CalQL pipeline as the program's own data.
        let ds = caliper.take_dataset();
        let result = caliper_query::run_query(
            &ds,
            "AGGREGATE sum(metric.value) GROUP BY metric.name WHERE metric.name",
        )
        .unwrap();
        let lookup = |name: &str| {
            result.lookup(
                |r, s| {
                    let attr = s.find("metric.name").unwrap();
                    r.get(attr.id()) == Some(&Value::str(name))
                },
                "sum#metric.value",
            )
        };
        // 3 x (begin + end) = 6 blackboard ops and 6 event snapshots.
        assert_eq!(lookup("runtime.blackboard.ops"), Some(Value::UInt(6)));
        assert_eq!(lookup("runtime.snapshots"), Some(Value::UInt(6)));
        assert_eq!(lookup("runtime.flushed_threads"), Some(Value::UInt(1)));
    }

    #[test]
    fn metrics_capture_journal_stats() {
        let dir = std::env::temp_dir().join(format!(
            "caliper-metrics-journal-{}",
            std::process::id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("chan.journal");
        let config = Config::event_trace()
            .set("services", "event,timer,trace,journal")
            .set("journal.enable", "true")
            .set("journal.path", path.to_str().unwrap())
            .set("metrics.enable", "true");
        let caliper = Caliper::with_clock(config, Clock::virtual_clock());
        let function = caliper.region_attribute("function");
        let mut scope = caliper.make_thread_scope();
        scope.begin(&function, "x");
        scope.end(&function).unwrap();
        scope.flush();
        let ds = caliper.take_dataset();
        let name = ds.store.find("metric.name").unwrap();
        let value = ds.store.find("metric.value").unwrap();
        let appended = ds
            .flat_records()
            .find(|r| r.get(name.id()) == Some(&Value::str("runtime.journal.appended")))
            .expect("journal gauge emitted");
        assert!(
            appended.get(value.id()).unwrap().to_u64().unwrap() >= 2,
            "journal appended the two event snapshots"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn globals_reach_all_channels() {
        let caliper = Caliper::with_clock(Config::baseline(), Clock::virtual_clock());
        let second = caliper.create_channel("b", Config::baseline());
        caliper.set_global("mpi.rank", 7i64);
        assert_eq!(
            caliper.take_dataset().global("mpi.rank"),
            Some(Value::Int(7))
        );
        assert_eq!(
            second.take_dataset().global("mpi.rank"),
            Some(Value::Int(7))
        );
    }
}
