//! Service modules: the independent building blocks combined through a
//! callback API (§IV-A).
//!
//! A snapshot flows through two callback phases (Figure 2):
//!
//! 1. **augment** — measurement services append data to the snapshot
//!    record (the timer service adds `time.duration`).
//! 2. **consume** — processing services receive the finished record
//!    (the trace service buffers it; the aggregate service folds it
//!    into its per-thread aggregation database).
//!
//! At flush time each service writes its output into the process
//! dataset. Services are per-thread objects: the aggregate service
//! keeps "a separate aggregation database for each monitored thread …
//! this design avoids the use of thread locks" (§IV-B).

use std::sync::Arc;

use caliper_data::{
    AttrId, Attribute, AttributeConflict, AttributeStore, ContextTree, Entry, Properties,
    SnapshotRecord, Value, ValueType,
};
use caliper_format::Dataset;
use caliper_query::{AggregationSpec, Aggregator};

use crate::clock::Clock;

/// What triggered a snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Trigger {
    /// A region begin event (instrumentation hook).
    Begin(AttrId),
    /// A region end event.
    End(AttrId),
    /// A set (value replacement) event.
    Set(AttrId),
    /// The sampling timer fired.
    Sample,
    /// Explicitly requested through the API.
    User,
}

/// Context passed to service callbacks.
pub struct ProcCtx<'a> {
    /// Process attribute dictionary.
    pub store: &'a AttributeStore,
    /// Process context tree.
    pub tree: &'a ContextTree,
    /// The runtime clock.
    pub clock: &'a Clock,
    /// What triggered this snapshot.
    pub trigger: Trigger,
}

/// A per-thread service instance.
pub trait Service: Send {
    /// Service name (as used in the `services` config list).
    fn name(&self) -> &'static str;

    /// Augment phase: append measurement data to the snapshot record.
    fn augment(&mut self, _ctx: &ProcCtx<'_>, _rec: &mut SnapshotRecord) {}

    /// Consume phase: process the finished snapshot record.
    fn consume(&mut self, _ctx: &ProcCtx<'_>, _rec: &SnapshotRecord) {}

    /// Flush: write this service's output records into the process
    /// dataset. Called once, when the thread scope is flushed.
    fn flush(&mut self, _ctx: &ProcCtx<'_>, _out: &mut Dataset) {}

    /// Number of output records a flush would currently produce
    /// (Table I's "output records" column).
    fn output_records(&self) -> usize {
        0
    }
}

/// The timer service: adds `time.duration` — the time elapsed since the
/// previous snapshot on this thread, in microseconds.
///
/// With event-triggered snapshots this attributes each interval to the
/// context that was active during it: the time between a region's begin
/// and end snapshots lands on the end snapshot, whose context still
/// contains the region.
pub struct TimerService {
    attr: Attribute,
    last_ns: u64,
    started: bool,
    /// `time.inclusive.duration` support: per-attribute stacks of
    /// region-begin timestamps, maintained from the snapshot triggers.
    inclusive: Option<InclusiveTimer>,
    /// Emit `time.offset` (µs since process start) on every snapshot —
    /// gives traces a time axis for time-series queries.
    offset_attr: Option<Attribute>,
}

struct InclusiveTimer {
    attr: Attribute,
    begin_stacks: caliper_data::FxHashMap<AttrId, Vec<u64>>,
}

impl TimerService {
    /// Attribute label of the timer's output.
    pub const DURATION_ATTR: &'static str = "time.duration";
    /// Attribute label of the inclusive-duration output.
    pub const INCLUSIVE_ATTR: &'static str = "time.inclusive.duration";
    /// Attribute label of the snapshot-timestamp output.
    pub const OFFSET_ATTR: &'static str = "time.offset";

    /// Create the timer service, interning its output attribute.
    /// Fails when an output attribute already exists with a conflicting
    /// type — the caller (thread-scope setup) skips the service with a
    /// note instead of panicking inside the measured application.
    pub fn new(store: &AttributeStore) -> Result<TimerService, AttributeConflict> {
        TimerService::with_options(store, false, false)
    }

    /// Create the timer with optional inclusive-duration tracking and
    /// per-snapshot timestamps (see [`TimerService::new`] for the
    /// conflict contract).
    pub fn with_options(
        store: &AttributeStore,
        inclusive: bool,
        offset: bool,
    ) -> Result<TimerService, AttributeConflict> {
        let props = Properties::AS_VALUE | Properties::AGGREGATABLE;
        let attr = store.create(Self::DURATION_ATTR, ValueType::Float, props)?;
        let inclusive = match inclusive {
            true => Some(InclusiveTimer {
                attr: store.create(Self::INCLUSIVE_ATTR, ValueType::Float, props)?,
                begin_stacks: Default::default(),
            }),
            false => None,
        };
        let offset_attr = match offset {
            true => Some(store.create(Self::OFFSET_ATTR, ValueType::Float, Properties::AS_VALUE)?),
            false => None,
        };
        Ok(TimerService {
            attr,
            last_ns: 0,
            started: false,
            inclusive,
            offset_attr,
        })
    }
}

impl Service for TimerService {
    fn name(&self) -> &'static str {
        "timer"
    }

    fn augment(&mut self, ctx: &ProcCtx<'_>, rec: &mut SnapshotRecord) {
        let now = ctx.clock.now_ns();
        if self.started {
            let duration_us = (now - self.last_ns) as f64 / 1000.0;
            rec.push_imm(self.attr.id(), Value::Float(duration_us));
        }
        if let Some(offset) = &self.offset_attr {
            rec.push_imm(offset.id(), Value::Float(now as f64 / 1000.0));
        }
        if let Some(inclusive) = &mut self.inclusive {
            match ctx.trigger {
                // The begin snapshot runs before the blackboard push:
                // record when this region instance started.
                Trigger::Begin(attr) => {
                    inclusive.begin_stacks.entry(attr).or_default().push(now);
                }
                // The end snapshot runs before the pop: the region's
                // inclusive duration is now - its begin timestamp.
                Trigger::End(attr) => {
                    if let Some(begin) = inclusive
                        .begin_stacks
                        .get_mut(&attr)
                        .and_then(|stack| stack.pop())
                    {
                        let inclusive_us = (now - begin) as f64 / 1000.0;
                        rec.push_imm(inclusive.attr.id(), Value::Float(inclusive_us));
                    }
                }
                _ => {}
            }
        }
        self.last_ns = now;
        self.started = true;
    }
}

/// The trace service: stores every snapshot record verbatim (the paper's
/// "tracing" configuration — more data, computationally simpler).
#[derive(Default)]
pub struct TraceService {
    buffer: Vec<SnapshotRecord>,
}

impl TraceService {
    /// Create an empty trace buffer.
    pub fn new() -> TraceService {
        TraceService::default()
    }

    /// Records buffered so far.
    pub fn len(&self) -> usize {
        self.buffer.len()
    }

    /// True if nothing was traced yet.
    pub fn is_empty(&self) -> bool {
        self.buffer.is_empty()
    }
}

impl Service for TraceService {
    fn name(&self) -> &'static str {
        "trace"
    }

    fn consume(&mut self, _ctx: &ProcCtx<'_>, rec: &SnapshotRecord) {
        self.buffer.push(rec.clone());
    }

    fn flush(&mut self, _ctx: &ProcCtx<'_>, out: &mut Dataset) {
        out.records.append(&mut self.buffer);
    }

    fn output_records(&self) -> usize {
        self.buffer.len()
    }
}

/// The on-line aggregation service (§IV-B): streams snapshot records
/// into a per-thread aggregation database.
///
/// The service's count operator emits `aggregate.count`, which off-line
/// queries re-aggregate with `sum(aggregate.count)` (§VI-B).
pub struct AggregateService {
    aggregator: Aggregator,
    store: Arc<AttributeStore>,
    /// Maximum number of entries in the in-memory database before the
    /// database is spilled (0 = unbounded). On-line aggregation runs
    /// inside the target program and must bound its memory (§II-D);
    /// when the cap is hit the current entries are emitted as partial
    /// results and the database restarts. Partial results re-aggregate
    /// exactly in post-processing (sum-of-sums etc.).
    max_entries: usize,
    /// Partial results spilled before the final flush.
    spilled: Vec<SnapshotRecord>,
    /// Number of spill events (diagnostics).
    spills: u64,
}

impl AggregateService {
    /// Label of the on-line count result attribute.
    pub const COUNT_ATTR: &'static str = "aggregate.count";

    /// Create the service from an aggregation scheme (unbounded DB).
    pub fn new(spec: AggregationSpec, store: Arc<AttributeStore>) -> AggregateService {
        AggregateService::with_capacity(spec, store, 0)
    }

    /// Create the service with a bounded database: at most
    /// `max_entries` unique keys are held in memory (0 = unbounded).
    pub fn with_capacity(
        spec: AggregationSpec,
        store: Arc<AttributeStore>,
        max_entries: usize,
    ) -> AggregateService {
        let spec = spec.with_count_label(Self::COUNT_ATTR);
        AggregateService {
            aggregator: Aggregator::new(spec, Arc::clone(&store)),
            store,
            max_entries,
            spilled: Vec::new(),
            spills: 0,
        }
    }

    /// Entries currently in the aggregation database.
    pub fn len(&self) -> usize {
        self.aggregator.len()
    }

    /// True if the aggregation database has no entries.
    pub fn is_empty(&self) -> bool {
        self.aggregator.is_empty()
    }

    /// Number of times the database overflowed and spilled.
    pub fn spill_count(&self) -> u64 {
        self.spills
    }

    /// Flush the current database into `spilled` (against the process
    /// store, so spilled records share ids with the final flush) and
    /// restart it.
    fn spill(&mut self) {
        let spec = self.aggregator.spec().clone();
        let fresh = Aggregator::new(spec, Arc::clone(&self.store));
        let full = std::mem::replace(&mut self.aggregator, fresh);
        for flat in full.flush(&self.store) {
            let entries = flat
                .pairs()
                .iter()
                .map(|(a, v)| Entry::Imm(*a, v.clone()))
                .collect();
            self.spilled.push(SnapshotRecord::from_entries(entries));
        }
        self.spills += 1;
    }
}

impl Service for AggregateService {
    fn name(&self) -> &'static str {
        "aggregate"
    }

    fn consume(&mut self, ctx: &ProcCtx<'_>, rec: &SnapshotRecord) {
        let flat = rec.unpack(ctx.tree);
        self.aggregator.add(&flat);
        if self.max_entries > 0 && self.aggregator.len() >= self.max_entries {
            self.spill();
        }
    }

    fn flush(&mut self, _ctx: &ProcCtx<'_>, out: &mut Dataset) {
        // Flush the aggregation database: reconstruct key attributes and
        // append the reduction results (paper §IV-B). Result attributes
        // are interned in the output dataset's store.
        out.records.append(&mut self.spilled);
        for flat in self.aggregator.flush(&out.store) {
            let entries = flat
                .pairs()
                .iter()
                .map(|(a, v)| Entry::Imm(*a, v.clone()))
                .collect();
            out.push(SnapshotRecord::from_entries(entries));
        }
    }

    fn output_records(&self) -> usize {
        self.spilled.len() + self.aggregator.len()
    }
}

/// The counters service: synthetic hardware performance counters.
///
/// Caliper's building blocks include hardware counter access (§IV-A);
/// real PAPI counters are not available in this reproduction, so this
/// service derives `cpu.instructions` and `cpu.cycles` deterministically
/// from elapsed (virtual) time using configurable rates:
///
/// * `counters.ghz`  — simulated clock rate (default 2.1, Quartz's
///   Xeon E5-2695 base clock),
/// * `counters.ipc`  — simulated instructions per cycle (default 1.6).
///
/// Like the timer, it reports the delta since the previous snapshot on
/// this thread, so counter values aggregate exactly like
/// `time.duration`.
pub struct CountersService {
    instructions: Attribute,
    cycles: Attribute,
    ghz: f64,
    ipc: f64,
    last_ns: u64,
    started: bool,
}

impl CountersService {
    /// Create the service, interning its output attributes. Fails on an
    /// attribute type conflict (see [`TimerService::new`]).
    pub fn new(
        store: &AttributeStore,
        ghz: f64,
        ipc: f64,
    ) -> Result<CountersService, AttributeConflict> {
        let props = Properties::AS_VALUE | Properties::AGGREGATABLE;
        Ok(CountersService {
            instructions: store.create("cpu.instructions", ValueType::UInt, props)?,
            cycles: store.create("cpu.cycles", ValueType::UInt, props)?,
            ghz,
            ipc,
            last_ns: 0,
            started: false,
        })
    }
}

impl Service for CountersService {
    fn name(&self) -> &'static str {
        "counters"
    }

    fn augment(&mut self, ctx: &ProcCtx<'_>, rec: &mut SnapshotRecord) {
        let now = ctx.clock.now_ns();
        if self.started {
            let cycles = ((now - self.last_ns) as f64 * self.ghz) as u64;
            let instructions = (cycles as f64 * self.ipc) as u64;
            rec.push_imm(self.cycles.id(), Value::UInt(cycles));
            rec.push_imm(self.instructions.id(), Value::UInt(instructions));
        }
        self.last_ns = now;
        self.started = true;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use caliper_query::parse_query;

    fn ctx<'a>(
        store: &'a AttributeStore,
        tree: &'a ContextTree,
        clock: &'a Clock,
    ) -> ProcCtx<'a> {
        ProcCtx {
            store,
            tree,
            clock,
            trigger: Trigger::User,
        }
    }

    #[test]
    fn timer_measures_between_snapshots() {
        let store = AttributeStore::new();
        let tree = ContextTree::new();
        let clock = Clock::virtual_clock();
        let mut timer = TimerService::new(&store).unwrap();
        let c = ctx(&store, &tree, &clock);

        let mut rec = SnapshotRecord::new();
        timer.augment(&c, &mut rec);
        // First snapshot has no duration (no previous snapshot).
        assert!(rec.is_empty());

        clock.advance_ns(2_500_000); // 2.5 ms
        let mut rec = SnapshotRecord::new();
        timer.augment(&c, &mut rec);
        let flat = rec.unpack(&tree);
        let attr = store.find(TimerService::DURATION_ATTR).unwrap();
        assert_eq!(flat.get(attr.id()), Some(&Value::Float(2500.0)));
    }

    #[test]
    fn inclusive_timer_measures_whole_regions() {
        let store = AttributeStore::new();
        let tree = ContextTree::new();
        let clock = Clock::virtual_clock();
        let mut timer = TimerService::with_options(&store, true, true).unwrap();
        let func = store.create_simple("function", ValueType::Str);

        let snap = |timer: &mut TimerService, trigger: Trigger, clock: &Clock| {
            let ctx = ProcCtx {
                store: &store,
                tree: &tree,
                clock,
                trigger,
            };
            let mut rec = SnapshotRecord::new();
            timer.augment(&ctx, &mut rec);
            rec.unpack(&tree)
        };

        // outer begin at t=0; inner begin at t=10us; inner end at
        // t=25us; outer end at t=40us.
        snap(&mut timer, Trigger::Begin(func.id()), &clock);
        clock.advance_ns(10_000);
        snap(&mut timer, Trigger::Begin(func.id()), &clock);
        clock.advance_ns(15_000);
        let inner_end = snap(&mut timer, Trigger::End(func.id()), &clock);
        clock.advance_ns(15_000);
        let outer_end = snap(&mut timer, Trigger::End(func.id()), &clock);

        let inclusive = store.find(TimerService::INCLUSIVE_ATTR).unwrap();
        let exclusive = store.find(TimerService::DURATION_ATTR).unwrap();
        let offset = store.find(TimerService::OFFSET_ATTR).unwrap();
        // inner: inclusive 15us (== its exclusive interval here)
        assert_eq!(inner_end.get(inclusive.id()), Some(&Value::Float(15.0)));
        assert_eq!(inner_end.get(exclusive.id()), Some(&Value::Float(15.0)));
        // outer: inclusive 40us, but only 15us since the last snapshot
        assert_eq!(outer_end.get(inclusive.id()), Some(&Value::Float(40.0)));
        assert_eq!(outer_end.get(exclusive.id()), Some(&Value::Float(15.0)));
        // timestamps give the trace a time axis
        assert_eq!(outer_end.get(offset.id()), Some(&Value::Float(40.0)));
    }

    #[test]
    fn trace_buffers_and_flushes() {
        let store = Arc::new(AttributeStore::new());
        let tree = Arc::new(ContextTree::new());
        let clock = Clock::virtual_clock();
        let mut trace = TraceService::new();
        let c = ctx(&store, &tree, &clock);

        for i in 0..5 {
            let mut rec = SnapshotRecord::new();
            rec.push_imm(0, Value::Int(i));
            trace.consume(&c, &rec);
        }
        assert_eq!(trace.output_records(), 5);

        let mut out = Dataset::with_context(Arc::clone(&store), Arc::clone(&tree));
        trace.flush(&c, &mut out);
        assert_eq!(out.len(), 5);
        assert!(trace.is_empty());
    }

    #[test]
    fn bounded_db_spills_and_reaggregates_exactly() {
        let store = Arc::new(AttributeStore::new());
        let tree = Arc::new(ContextTree::new());
        let clock = Clock::virtual_clock();
        let kernel = store.create_simple("kernel", ValueType::Str);
        let time = store.create_simple("t", ValueType::Int);
        let spec = AggregationSpec::from_query(
            &parse_query("AGGREGATE count, sum(t) GROUP BY kernel").unwrap(),
        );
        let c = ctx(&store, &tree, &clock);

        // 16 distinct keys, visited 8 times each, with a cap of 4.
        let feed = |service: &mut AggregateService| {
            for round in 0..8 {
                for k in 0..16 {
                    let mut rec = SnapshotRecord::new();
                    rec.push_imm(kernel.id(), Value::str(format!("k{k}")));
                    rec.push_imm(time.id(), Value::Int(round + k));
                    service.consume(&c, &rec);
                }
            }
        };

        let mut bounded = AggregateService::with_capacity(spec.clone(), Arc::clone(&store), 4);
        feed(&mut bounded);
        assert!(bounded.spill_count() > 0);

        let mut unbounded = AggregateService::new(spec, Arc::clone(&store));
        feed(&mut unbounded);
        assert_eq!(unbounded.spill_count(), 0);

        // Flush both and re-aggregate offline: results must be equal.
        let mut out_b = Dataset::with_context(Arc::clone(&store), Arc::clone(&tree));
        bounded.flush(&c, &mut out_b);
        let mut out_u = Dataset::with_context(Arc::clone(&store), Arc::clone(&tree));
        unbounded.flush(&c, &mut out_u);
        assert!(out_b.len() > out_u.len()); // partial results present

        let requery = "AGGREGATE sum(aggregate.count) AS n, sum(sum#t) AS t \
                       GROUP BY kernel ORDER BY kernel";
        let a = caliper_query::run_query(&out_b, requery).unwrap();
        let b = caliper_query::run_query(&out_u, requery).unwrap();
        assert_eq!(a.to_table().render(), b.to_table().render());
    }

    #[test]
    fn counters_track_virtual_time() {
        let store = AttributeStore::new();
        let tree = ContextTree::new();
        let clock = Clock::virtual_clock();
        let mut counters = CountersService::new(&store, 2.0, 1.5).unwrap();
        let c = ctx(&store, &tree, &clock);

        let mut rec = SnapshotRecord::new();
        counters.augment(&c, &mut rec);
        assert!(rec.is_empty()); // no previous snapshot yet

        clock.advance_ns(1_000);
        let mut rec = SnapshotRecord::new();
        counters.augment(&c, &mut rec);
        let flat = rec.unpack(&tree);
        let cycles = store.find("cpu.cycles").unwrap();
        let instructions = store.find("cpu.instructions").unwrap();
        assert_eq!(flat.get(cycles.id()), Some(&Value::UInt(2_000)));
        assert_eq!(flat.get(instructions.id()), Some(&Value::UInt(3_000)));
    }

    #[test]
    fn aggregate_service_uses_online_count_label() {
        let store = Arc::new(AttributeStore::new());
        let tree = Arc::new(ContextTree::new());
        let clock = Clock::virtual_clock();
        let kernel = store.create_simple("kernel", ValueType::Str);
        let spec = parse_query("AGGREGATE count GROUP BY kernel").unwrap();
        let mut service =
            AggregateService::new(AggregationSpec::from_query(&spec), Arc::clone(&store));
        let c = ctx(&store, &tree, &clock);

        for name in ["a", "b", "a", "a"] {
            let mut rec = SnapshotRecord::new();
            rec.push_imm(kernel.id(), Value::str(name));
            service.consume(&c, &rec);
        }
        assert_eq!(service.output_records(), 2);

        let mut out = Dataset::with_context(Arc::clone(&store), Arc::clone(&tree));
        service.flush(&c, &mut out);
        assert_eq!(out.len(), 2);
        let count = out.store.find(AggregateService::COUNT_ATTR).unwrap();
        let flats: Vec<_> = out.flat_records().collect();
        let a_row = flats
            .iter()
            .find(|r| r.get(kernel.id()) == Some(&Value::str("a")))
            .unwrap();
        assert_eq!(a_row.get(count.id()), Some(&Value::UInt(3)));
    }
}
