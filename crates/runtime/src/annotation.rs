//! High-level annotation API: the `mark_begin` / `mark_end` interface
//! from the paper's Listing 1, modeled after Caliper's `cali::Annotation`
//! C++ class.
//!
//! ```
//! use caliper_runtime::{Annotation, Caliper, Clock, Config};
//!
//! let caliper = Caliper::with_clock(Config::event_trace(), Clock::virtual_clock());
//! let mut scope = caliper.make_thread_scope();
//!
//! let function = Annotation::new(&caliper, "function");
//! let iteration = Annotation::value_attribute(&caliper, "loop.iteration");
//!
//! for i in 0..4i64 {
//!     iteration.begin(&mut scope, i);
//!     function.begin(&mut scope, "foo");
//!     // ... work ...
//!     function.end(&mut scope);
//!     iteration.end(&mut scope);
//! }
//! ```

use std::sync::Arc;

use caliper_data::{Attribute, Properties, Value, ValueType};

use crate::runtime::Caliper;
use crate::thread::ThreadScope;

/// A reusable annotation handle for one attribute.
#[derive(Clone)]
pub struct Annotation {
    attr: Attribute,
}

impl Annotation {
    /// A nested string annotation (source-code regions, function names,
    /// user-defined phases).
    pub fn new(caliper: &Arc<Caliper>, name: &str) -> Annotation {
        Annotation {
            attr: caliper.attribute(name, ValueType::Str, Properties::NESTED),
        }
    }

    /// An integer annotation stored as an immediate value (loop
    /// iteration numbers, AMR levels, ranks).
    pub fn value_attribute(caliper: &Arc<Caliper>, name: &str) -> Annotation {
        Annotation {
            attr: caliper.attribute(name, ValueType::Int, Properties::AS_VALUE),
        }
    }

    /// An annotation over an existing attribute handle.
    pub fn from_attribute(attr: Attribute) -> Annotation {
        Annotation { attr }
    }

    /// The underlying attribute.
    pub fn attribute(&self) -> &Attribute {
        &self.attr
    }

    /// `mark_begin`: push a value.
    pub fn begin(&self, scope: &mut ThreadScope, value: impl Into<Value>) {
        scope.begin(&self.attr, value);
    }

    /// `mark_end`: pop the innermost value. Unbalanced ends are
    /// reported by the scope; the annotation API swallows the error
    /// after debug-asserting, matching Caliper's forgiving C API.
    pub fn end(&self, scope: &mut ThreadScope) {
        let result = scope.end(&self.attr);
        debug_assert!(result.is_ok(), "unbalanced end: {result:?}");
    }

    /// Replace the current value.
    pub fn set(&self, scope: &mut ThreadScope, value: impl Into<Value>) {
        scope.set(&self.attr, value);
    }

    /// Run `body` inside a begin/end pair.
    pub fn scoped<R>(
        &self,
        scope: &mut ThreadScope,
        value: impl Into<Value>,
        body: impl FnOnce(&mut ThreadScope) -> R,
    ) -> R {
        scope.scoped(&self.attr, value, body)
    }
}

impl std::fmt::Debug for Annotation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Annotation({})", self.attr.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::Clock;
    use crate::config::Config;

    #[test]
    fn annotation_roundtrip() {
        let caliper = Caliper::with_clock(Config::event_trace(), Clock::virtual_clock());
        let mut scope = caliper.make_thread_scope();
        let func = Annotation::new(&caliper, "function");
        let iter = Annotation::value_attribute(&caliper, "loop.iteration");

        iter.begin(&mut scope, 7i64);
        func.begin(&mut scope, "foo");
        assert_eq!(
            scope.blackboard().get(func.attribute()),
            Some(Value::str("foo"))
        );
        assert_eq!(
            scope.blackboard().get(iter.attribute()),
            Some(Value::Int(7))
        );
        func.end(&mut scope);
        iter.end(&mut scope);
        assert!(scope.blackboard().is_empty());
    }

    #[test]
    fn scoped_nests() {
        let caliper = Caliper::with_clock(Config::baseline(), Clock::virtual_clock());
        let mut scope = caliper.make_thread_scope();
        let phase = Annotation::new(&caliper, "phase");
        let result = phase.scoped(&mut scope, "outer", |scope| {
            phase.scoped(scope, "inner", |scope| {
                scope
                    .blackboard()
                    .get(phase.attribute())
                    .map(|v| v.to_string())
            })
        });
        assert_eq!(result.as_deref(), Some("inner"));
    }
}
