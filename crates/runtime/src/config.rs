//! Runtime configuration profiles.
//!
//! The paper (§IV-A): "Users specify which building blocks to use in a
//! runtime configuration profile, either in a configuration file or
//! environment variables." A [`Config`] is a small key=value dictionary
//! with typed accessors; [`Config::from_text`] parses the file form
//! (one `key = value` per line, `#` comments).
//!
//! Recognized keys:
//!
//! | key                   | meaning                                           |
//! |-----------------------|---------------------------------------------------|
//! | `services`            | comma list: `aggregate`, `trace`, `timer`, `sampler`, `event`, `journal` |
//! | `aggregate.key`       | comma list of key attribute labels (GROUP BY)     |
//! | `aggregate.ops`       | AGGREGATE op list, e.g. `count,sum(time.duration)`|
//! | `sampler.interval.ns` | sampling period for the sampler service           |
//! | `journal.enable`      | write-ahead snapshot journal on/off               |
//! | `journal.path`        | journal file path (required when journaling)      |
//! | `journal.flush_interval` | journal flush cadence in snapshots (default 1) |
//! | `journal.max_buffer`  | journal buffer byte cap forcing a flush           |
//! | `journal.fsync`       | `fsync` the journal after each flush              |
//! | `journal.append`      | resume an existing journal instead of truncating  |
//! | `metrics.enable`      | per-channel self-instrumentation registry on/off  |
//!
//! The resident aggregation daemon (`cali-served`, see `docs/SERVED.md`)
//! reads its profile through the same machinery, so its keys are
//! validated here too:
//!
//! | key                       | meaning                                       |
//! |---------------------------|-----------------------------------------------|
//! | `served.port`             | ingest TCP port (`0` = ephemeral)             |
//! | `served.http.port`        | query/health HTTP port (`0` = ephemeral)      |
//! | `served.queue.depth`      | bounded ingest queue capacity (≥ 1)           |
//! | `served.workers`          | ingest worker thread count (≥ 1)              |
//! | `served.query.deadline.ms`| per-query wall-clock budget                   |
//! | `served.replay.deadline.ms`| journal-replay budget per stream at startup  |
//! | `served.shutdown.deadline.ms`| graceful-drain budget before forced exit   |
//! | `served.supervisor.max.restarts`| worker restarts before giving up        |
//! | `served.stream.max.failures`| consecutive batch failures tripping a stream's circuit breaker |
//! | `served.max.groups`       | aggregate-state group cap per stream          |
//! | `served.batch.max.bytes`  | largest accepted ingest batch                 |
//! | `served.fsync`            | fsync journals on every accepted batch        |
//! | `served.aggregate.ops` / `served.aggregate.key` | resident aggregation scheme |
//!
//! Unknown keys are kept (services may define their own).
//! [`Config::validate`] checks the values of all recognized keys and
//! returns the first problem as a [`ConfigError`]; [`Caliper::try_new`]
//! runs it so invalid profiles fail up front instead of panicking in
//! thread-scope setup.
//!
//! [`Caliper::try_new`]: crate::runtime::Caliper::try_new

use std::collections::BTreeMap;

/// Error from parsing or validating a configuration profile.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError {
    /// 1-based line number; 0 when the error is not tied to a source
    /// line (e.g. a bad value set programmatically or via environment).
    pub line: usize,
    /// Description.
    pub message: String,
}

impl ConfigError {
    /// A validation error for one configuration key, not tied to a
    /// source line.
    pub fn for_key(key: &str, message: impl std::fmt::Display) -> ConfigError {
        ConfigError {
            line: 0,
            message: format!("{key}: {message}"),
        }
    }
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.line == 0 {
            write!(f, "config error: {}", self.message)
        } else {
            write!(f, "config error at line {}: {}", self.line, self.message)
        }
    }
}

impl std::error::Error for ConfigError {}

/// A runtime configuration profile.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Config {
    entries: BTreeMap<String, String>,
}

impl Config {
    /// Empty profile (no services enabled).
    pub fn new() -> Config {
        Config::default()
    }

    /// Parse the config-file form.
    pub fn from_text(text: &str) -> Result<Config, ConfigError> {
        let mut config = Config::new();
        for (i, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            match line.split_once('=') {
                Some((key, value)) => {
                    config
                        .entries
                        .insert(key.trim().to_string(), value.trim().to_string());
                }
                None => {
                    return Err(ConfigError {
                        line: i + 1,
                        message: format!("expected 'key = value', got '{line}'"),
                    })
                }
            }
        }
        Ok(config)
    }

    /// Build a profile from environment variables, the second
    /// configuration path named in §IV-A. Variables are matched by
    /// prefix and mapped to config keys: with the default prefix,
    /// `CALI_SERVICES=event,timer,trace` sets `services`, and
    /// `CALI_AGGREGATE_KEY=kernel` sets `aggregate.key` (underscores
    /// after the prefix become dots, lowercased).
    pub fn from_env_prefix(prefix: &str) -> Config {
        let mut config = Config::new();
        for (key, value) in std::env::vars() {
            if let Some(rest) = key.strip_prefix(prefix) {
                let key = rest.to_ascii_lowercase().replace('_', ".");
                if !key.is_empty() {
                    config.entries.insert(key, value);
                }
            }
        }
        config
    }

    /// [`Config::from_env_prefix`] with the conventional `CALI_` prefix.
    pub fn from_env() -> Config {
        Config::from_env_prefix("CALI_")
    }

    /// Set a key (builder style).
    pub fn set(mut self, key: &str, value: &str) -> Config {
        self.entries.insert(key.to_string(), value.to_string());
        self
    }

    /// Raw lookup.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.entries.get(key).map(String::as_str)
    }

    /// Comma-separated list value (trimmed, empty items dropped).
    pub fn get_list(&self, key: &str) -> Vec<String> {
        self.get(key)
            .map(|v| {
                v.split(',')
                    .map(str::trim)
                    .filter(|s| !s.is_empty())
                    .map(str::to_string)
                    .collect()
            })
            .unwrap_or_default()
    }

    /// Integer value with default.
    pub fn get_u64(&self, key: &str, default: u64) -> u64 {
        self.get(key).and_then(|v| v.parse().ok()).unwrap_or(default)
    }

    /// Boolean value with default (`true`/`false`/`1`/`0`).
    pub fn get_bool(&self, key: &str, default: bool) -> bool {
        match self.get(key) {
            Some("true") | Some("1") => true,
            Some("false") | Some("0") => false,
            _ => default,
        }
    }

    /// Whether a service is listed in `services`.
    pub fn service_enabled(&self, name: &str) -> bool {
        self.get_list("services").iter().any(|s| s == name)
    }

    /// Validate the values of every recognized key, returning the
    /// first problem. Unknown keys are still ignored — services may
    /// define their own — but a present, malformed value for a key the
    /// runtime consumes is an error here rather than a panic (or a
    /// silently applied default) later.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if let Some(ops) = self.get("aggregate.ops") {
            caliper_query::parse_query(&format!("AGGREGATE {ops}")).map_err(|e| {
                ConfigError::for_key("aggregate.ops", format!("invalid op list '{ops}': {e}"))
            })?;
        }
        for key in ["sampler.interval.ns", "aggregate.max_entries"] {
            if let Some(v) = self.get(key) {
                v.trim().parse::<u64>().map_err(|_| {
                    ConfigError::for_key(key, format!("expected an unsigned integer, got '{v}'"))
                })?;
            }
        }
        if let Some(v) = self.get("metrics.enable") {
            if !matches!(v.trim(), "true" | "false" | "1" | "0") {
                return Err(ConfigError::for_key(
                    "metrics.enable",
                    format!("expected a boolean, got '{v}'"),
                ));
            }
        }
        // The journal.* keys share their validation with the journal
        // service so the two cannot drift apart.
        crate::journal::JournalConfig::from_config(self)?;
        self.validate_served()?;
        Ok(())
    }

    /// Validation for the `served.*` profile keys consumed by the
    /// resident aggregation daemon (`cali-served`). Split out of
    /// [`Config::validate`] only for readability — a typo'd value is a
    /// [`ConfigError`] either way, never a silently applied default.
    fn validate_served(&self) -> Result<(), ConfigError> {
        for key in ["served.port", "served.http.port"] {
            if let Some(v) = self.get(key) {
                v.trim().parse::<u16>().map_err(|_| {
                    ConfigError::for_key(key, format!("expected a TCP port (0-65535), got '{v}'"))
                })?;
            }
        }
        for key in ["served.queue.depth", "served.workers"] {
            if let Some(v) = self.get(key) {
                match v.trim().parse::<u64>() {
                    Ok(n) if n >= 1 => {}
                    _ => {
                        return Err(ConfigError::for_key(
                            key,
                            format!("expected a positive integer, got '{v}'"),
                        ))
                    }
                }
            }
        }
        for key in [
            "served.query.deadline.ms",
            "served.replay.deadline.ms",
            "served.shutdown.deadline.ms",
            "served.supervisor.max.restarts",
            "served.stream.max.failures",
            "served.max.groups",
            "served.batch.max.bytes",
        ] {
            if let Some(v) = self.get(key) {
                v.trim().parse::<u64>().map_err(|_| {
                    ConfigError::for_key(key, format!("expected an unsigned integer, got '{v}'"))
                })?;
            }
        }
        if let Some(v) = self.get("served.fsync") {
            if !matches!(v.trim(), "true" | "false" | "1" | "0") {
                return Err(ConfigError::for_key(
                    "served.fsync",
                    format!("expected a boolean, got '{v}'"),
                ));
            }
        }
        if let Some(ops) = self.get("served.aggregate.ops") {
            caliper_query::parse_query(&format!("AGGREGATE {ops}")).map_err(|e| {
                ConfigError::for_key(
                    "served.aggregate.ops",
                    format!("invalid op list '{ops}': {e}"),
                )
            })?;
        }
        Ok(())
    }

    // ---- convenience constructors for the common profiles ----

    /// Event-triggered tracing: every begin/end produces a stored
    /// snapshot record.
    pub fn event_trace() -> Config {
        Config::new().set("services", "event,timer,trace")
    }

    /// Event-triggered on-line aggregation with the given scheme.
    pub fn event_aggregate(key: &str, ops: &str) -> Config {
        Config::new()
            .set("services", "event,timer,aggregate")
            .set("aggregate.key", key)
            .set("aggregate.ops", ops)
    }

    /// Sampled tracing with the given period.
    pub fn sampled_trace(interval_ns: u64) -> Config {
        Config::new()
            .set("services", "sampler,timer,trace")
            .set("sampler.interval.ns", &interval_ns.to_string())
    }

    /// Sampled on-line aggregation.
    pub fn sampled_aggregate(interval_ns: u64, key: &str, ops: &str) -> Config {
        Config::new()
            .set("services", "sampler,timer,aggregate")
            .set("sampler.interval.ns", &interval_ns.to_string())
            .set("aggregate.key", key)
            .set("aggregate.ops", ops)
    }

    /// Baseline: no data collection at all (the paper's Figure 3
    /// baseline configuration).
    pub fn baseline() -> Config {
        Config::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_file_form() {
        let config = Config::from_text(
            "# CleverLeaf profile\nservices = event, timer, aggregate\naggregate.key = kernel,mpi.function\nsampler.interval.ns = 10000000\n",
        )
        .unwrap();
        assert!(config.service_enabled("event"));
        assert!(config.service_enabled("aggregate"));
        assert!(!config.service_enabled("trace"));
        assert_eq!(
            config.get_list("aggregate.key"),
            vec!["kernel", "mpi.function"]
        );
        assert_eq!(config.get_u64("sampler.interval.ns", 0), 10_000_000);
    }

    #[test]
    fn rejects_malformed_lines() {
        let err = Config::from_text("services trace").unwrap_err();
        assert_eq!(err.line, 1);
    }

    #[test]
    fn typed_accessors_default() {
        let config = Config::new().set("flag", "true").set("n", "nope");
        assert!(config.get_bool("flag", false));
        assert!(!config.get_bool("missing", false));
        assert_eq!(config.get_u64("n", 7), 7);
        assert!(config.get_list("missing").is_empty());
    }

    #[test]
    fn env_profile_maps_keys() {
        // Use a unique prefix so parallel tests cannot interfere.
        std::env::set_var("CALITEST77_SERVICES", "event,timer,trace");
        std::env::set_var("CALITEST77_AGGREGATE_KEY", "kernel");
        std::env::set_var("CALITEST77_SAMPLER_INTERVAL_NS", "5000");
        let config = Config::from_env_prefix("CALITEST77_");
        assert!(config.service_enabled("trace"));
        assert_eq!(config.get("aggregate.key"), Some("kernel"));
        assert_eq!(config.get_u64("sampler.interval.ns", 0), 5000);
        std::env::remove_var("CALITEST77_SERVICES");
        std::env::remove_var("CALITEST77_AGGREGATE_KEY");
        std::env::remove_var("CALITEST77_SAMPLER_INTERVAL_NS");
    }

    #[test]
    fn validate_accepts_the_stock_profiles() {
        for config in [
            Config::baseline(),
            Config::event_trace(),
            Config::event_aggregate("kernel", "count,sum(time.duration)"),
            Config::sampled_trace(10_000_000),
            Config::sampled_aggregate(10_000_000, "kernel", "count"),
        ] {
            config.validate().unwrap();
        }
    }

    #[test]
    fn validate_rejects_bad_values() {
        let err = Config::event_aggregate("kernel", "count, sum(")
            .validate()
            .unwrap_err();
        assert_eq!(err.line, 0);
        assert!(err.message.contains("aggregate.ops"), "{err}");
        assert!(err.to_string().starts_with("config error: "), "{err}");

        let err = Config::new()
            .set("sampler.interval.ns", "fast")
            .validate()
            .unwrap_err();
        assert!(err.message.contains("sampler.interval.ns"), "{err}");

        let err = Config::new()
            .set("journal.enable", "true")
            .validate()
            .unwrap_err();
        assert!(err.message.contains("journal.path"), "{err}");

        let err = Config::new()
            .set("metrics.enable", "yes")
            .validate()
            .unwrap_err();
        assert!(err.message.contains("metrics.enable"), "{err}");
        Config::new()
            .set("metrics.enable", "true")
            .validate()
            .unwrap();
    }

    #[test]
    fn validate_covers_served_keys() {
        // A full, valid daemon profile passes.
        Config::new()
            .set("served.port", "0")
            .set("served.http.port", "8080")
            .set("served.queue.depth", "64")
            .set("served.workers", "2")
            .set("served.query.deadline.ms", "2000")
            .set("served.supervisor.max.restarts", "5")
            .set("served.stream.max.failures", "3")
            .set("served.fsync", "true")
            .set("served.aggregate.ops", "count,sum(time.duration)")
            .validate()
            .unwrap();

        // Typos become ConfigErrors naming the key, not silent defaults.
        let cases = [
            ("served.port", "70000"),
            ("served.http.port", "http"),
            ("served.queue.depth", "0"),
            ("served.workers", "-1"),
            ("served.query.deadline.ms", "2s"),
            ("served.supervisor.max.restarts", "many"),
            ("served.stream.max.failures", "3.5"),
            ("served.max.groups", "all"),
            ("served.batch.max.bytes", "4MiB"),
            ("served.fsync", "yes"),
            ("served.aggregate.ops", "count,sum("),
        ];
        for (key, bad) in cases {
            let err = Config::new().set(key, bad).validate().unwrap_err();
            assert!(err.message.contains(key), "{key}: {err}");
            assert_eq!(err.line, 0);
        }
    }

    #[test]
    fn profile_constructors() {
        let c = Config::event_aggregate("kernel", "count,sum(time.duration)");
        assert!(c.service_enabled("aggregate"));
        assert_eq!(c.get("aggregate.ops"), Some("count,sum(time.duration)"));
        assert_eq!(Config::baseline(), Config::new());
        let s = Config::sampled_trace(10_000_000);
        assert!(s.service_enabled("sampler"));
        assert!(s.service_enabled("trace"));
    }
}
