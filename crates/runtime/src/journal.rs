//! Crash-safe snapshot journaling for the runtime: the `journal`
//! service, its process-wide flush hooks, and the configuration keys
//! that drive them.
//!
//! The on-line aggregation of §IV runs *inside* the measured
//! application: a crash or `kill -9` loses everything buffered since
//! startup, because [`Channel::take_dataset`] only runs at orderly
//! shutdown. With journaling enabled, every completed snapshot is also
//! appended — write-ahead — to an append-only `.cali` journal file
//! (see [`caliper_format::journal`]), so a dying process leaves a
//! valid record prefix on disk that `cali-recover` can salvage.
//!
//! Configuration keys (per channel):
//!
//! | key                      | meaning                                      |
//! |--------------------------|----------------------------------------------|
//! | `journal.enable`         | `true`/`false` (or list `journal` in `services`) |
//! | `journal.path`           | journal file path (required when enabled)    |
//! | `journal.flush_interval` | flush every N snapshots (default 1)          |
//! | `journal.max_buffer`     | byte cap forcing an early flush (default 1 MiB) |
//! | `journal.fsync`          | `fsync` after each flush (default false)     |
//! | `journal.append`         | resume an existing journal instead of truncating |
//!
//! Durability is layered: a *flush* survives process death (the
//! records are in the page cache), `fsync` additionally survives OS
//! death. Three flush triggers exist beyond the interval — the
//! `max_buffer` byte cap (backpressure, counted as forced), a
//! process-level panic hook that drains every live sink before the
//! panic propagates, and best-effort flushes on channel flush/drop.
//!
//! Every journaled snapshot is stamped with a monotonically increasing
//! `journal.seq` attribute; recovery uses it to deduplicate a
//! double-written tail and to detect mid-stream gaps.
//!
//! [`Channel::take_dataset`]: crate::runtime::Channel::take_dataset

use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Once, Weak};

use caliper_data::{Attribute, AttributeStore, ContextTree, FlatRecord, Properties, SnapshotRecord, Value, ValueType};
use caliper_format::journal::{FlushPolicy, JournalWriter, SEQ_ATTR};
use caliper_format::{Dataset, ReadPolicy};
use parking_lot::Mutex;

use crate::config::{Config, ConfigError};
use crate::services::{ProcCtx, Service};

/// Validated journal configuration for one channel.
#[derive(Debug, Clone, PartialEq)]
pub struct JournalConfig {
    /// Journal file path (`journal.path`).
    pub path: PathBuf,
    /// Records between flushes (`journal.flush_interval`, min 1).
    pub flush_interval: u64,
    /// Buffer byte cap forcing an early flush (`journal.max_buffer`).
    pub max_buffer: usize,
    /// `fsync` after each flush (`journal.fsync`).
    pub fsync: bool,
    /// Append to an existing journal instead of truncating
    /// (`journal.append`); the sequence resumes after the highest
    /// recovered sequence number.
    pub append: bool,
}

fn key_error(key: &str, message: impl std::fmt::Display) -> ConfigError {
    ConfigError::for_key(key, message.to_string())
}

fn parse_u64_key(config: &Config, key: &str, default: u64) -> Result<u64, ConfigError> {
    match config.get(key) {
        None => Ok(default),
        Some(v) => v
            .trim()
            .parse()
            .map_err(|_| key_error(key, format!("expected an unsigned integer, got '{v}'"))),
    }
}

fn parse_bool_key(config: &Config, key: &str, default: bool) -> Result<bool, ConfigError> {
    match config.get(key) {
        None => Ok(default),
        Some("true") | Some("1") => Ok(true),
        Some("false") | Some("0") => Ok(false),
        Some(v) => Err(key_error(key, format!("expected true/false/1/0, got '{v}'"))),
    }
}

impl JournalConfig {
    /// Read and validate the `journal.*` keys of a channel profile.
    /// Returns `Ok(None)` when journaling is not enabled; malformed
    /// values and a missing `journal.path` are [`ConfigError`]s.
    pub fn from_config(config: &Config) -> Result<Option<JournalConfig>, ConfigError> {
        let enabled =
            parse_bool_key(config, "journal.enable", false)? || config.service_enabled("journal");
        if !enabled {
            // Still validate the keys so a typo'd profile with
            // journaling later switched on does not change meaning.
            parse_u64_key(config, "journal.flush_interval", 1)?;
            parse_u64_key(config, "journal.max_buffer", 1 << 20)?;
            parse_bool_key(config, "journal.fsync", false)?;
            parse_bool_key(config, "journal.append", false)?;
            return Ok(None);
        }
        let path = config
            .get("journal.path")
            .map(str::trim)
            .filter(|p| !p.is_empty())
            .ok_or_else(|| {
                key_error(
                    "journal.path",
                    "journaling is enabled but journal.path names no file",
                )
            })?;
        let flush_interval = parse_u64_key(config, "journal.flush_interval", 1)?;
        if flush_interval == 0 {
            return Err(key_error("journal.flush_interval", "must be at least 1"));
        }
        Ok(Some(JournalConfig {
            path: PathBuf::from(path),
            flush_interval,
            max_buffer: parse_u64_key(config, "journal.max_buffer", 1 << 20)? as usize,
            fsync: parse_bool_key(config, "journal.fsync", false)?,
            append: parse_bool_key(config, "journal.append", false)?,
        }))
    }
}

/// A point-in-time snapshot of a journal sink's accounting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalStats {
    /// Journal file path.
    pub path: PathBuf,
    /// Records appended (snapshots + globals, buffered or durable).
    pub appended: u64,
    /// Records drained to the file (durable against process death).
    pub durable: u64,
    /// Buffer drains performed.
    pub flushes: u64,
    /// Flushes forced by the `journal.max_buffer` byte cap.
    pub forced_flushes: u64,
    /// `fsync` calls performed.
    pub syncs: u64,
    /// Transient write/fsync errors absorbed by bounded retry
    /// ([`caliper_format::retry`]).
    pub retries: u64,
    /// Next sequence number to be assigned.
    pub next_seq: u64,
    /// Write errors observed (the sink disables itself on the first).
    pub write_errors: u64,
    /// True once the sink shut down after a write error.
    pub disabled: bool,
}

struct SinkInner {
    /// `None` after a write error permanently disabled the sink.
    writer: Option<JournalWriter>,
    /// Context dataset sharing the process store/tree, so the journal
    /// writer can resolve the ids a snapshot references.
    ctx: Dataset,
    next_seq: u64,
    write_errors: u64,
}

/// The per-channel journal sink: serializes appends from all of the
/// channel's thread scopes into one append-only journal file.
///
/// The sink never panics and never returns errors into the measured
/// application: an I/O failure disables journaling for the rest of the
/// run (reported once on stderr and visible in [`JournalStats`]).
pub struct JournalSink {
    path: PathBuf,
    seq_attr: Attribute,
    /// Fast-path check so disabled sinks cost one atomic load.
    disabled: AtomicBool,
    inner: Mutex<SinkInner>,
}

impl JournalSink {
    /// Open the journal file and build a sink over the process store
    /// and tree. With `append`, an existing journal is first recovered
    /// (leniently) to find the highest sequence number, so resumed
    /// records extend rather than collide with the previous
    /// incarnation's.
    pub fn create(
        cfg: &JournalConfig,
        store: &Arc<AttributeStore>,
        tree: &Arc<ContextTree>,
    ) -> std::io::Result<Arc<JournalSink>> {
        let seq_attr = store
            .create(SEQ_ATTR, ValueType::UInt, Properties::AS_VALUE)
            .map_err(|e| std::io::Error::other(format!("cannot intern {SEQ_ATTR}: {e}")))?;
        let policy = FlushPolicy {
            flush_interval: cfg.flush_interval,
            max_buffer: cfg.max_buffer,
            fsync: cfg.fsync,
        };
        let mut next_seq = 0;
        let writer = if cfg.append {
            if let Ok((_, report)) =
                caliper_format::journal::recover_file(&cfg.path, ReadPolicy::lenient())
            {
                next_seq = report.max_seq.map(|m| m + 1).unwrap_or(0);
            }
            JournalWriter::open_append(&cfg.path, policy)?
        } else {
            JournalWriter::create(&cfg.path, policy)?
        };
        let sink = Arc::new(JournalSink {
            path: cfg.path.clone(),
            seq_attr,
            disabled: AtomicBool::new(false),
            inner: Mutex::new(SinkInner {
                writer: Some(writer),
                ctx: Dataset::with_context(Arc::clone(store), Arc::clone(tree)),
                next_seq,
                write_errors: 0,
            }),
        });
        register_sink(&sink);
        Ok(sink)
    }

    /// The journal file path.
    pub fn path(&self) -> &std::path::Path {
        &self.path
    }

    /// Append one completed snapshot, stamped with the next sequence
    /// number. Never panics; a write error disables the sink.
    pub fn append(&self, record: &SnapshotRecord) {
        if self.disabled.load(Ordering::Relaxed) {
            return;
        }
        let mut inner = self.inner.lock();
        let SinkInner {
            writer: Some(writer),
            ctx,
            next_seq,
            ..
        } = &mut *inner
        else {
            return;
        };
        // The `runtime.append` failpoint, keyed by journal path: an
        // injected error takes the same road as a real one — through
        // `disable`, never a panic into the measured application.
        let label = self.path.to_string_lossy();
        if caliper_faults::trigger(
            caliper_faults::sites::RUNTIME_APPEND,
            caliper_faults::stable_hash(&label),
            &label,
        )
        .is_some()
        {
            let e = std::io::Error::other(format!(
                "injected fault at {}",
                caliper_faults::sites::RUNTIME_APPEND
            ));
            self.disable(&mut inner, e);
            return;
        }
        let mut stamped = record.clone();
        stamped.push_imm(self.seq_attr.id(), Value::UInt(*next_seq));
        match writer.append_snapshot(ctx, &stamped) {
            Ok(()) => *next_seq += 1,
            Err(e) => self.disable(&mut inner, e),
        }
    }

    /// Append a dataset-global metadata record (unsequenced — globals
    /// are idempotent key/value pairs, so a double-written tail is
    /// harmless).
    pub fn append_globals(&self, record: &FlatRecord) {
        if self.disabled.load(Ordering::Relaxed) {
            return;
        }
        let mut inner = self.inner.lock();
        let SinkInner {
            writer: Some(writer),
            ctx,
            ..
        } = &mut *inner
        else {
            return;
        };
        if let Err(e) = writer.append_globals(ctx, record) {
            self.disable(&mut inner, e);
        }
    }

    /// Drain buffered records to the file. Called from thread-scope
    /// flushes, [`Channel::take_dataset`], the process panic hook, and
    /// drop. Never panics.
    ///
    /// [`Channel::take_dataset`]: crate::runtime::Channel::take_dataset
    pub fn flush(&self) {
        if self.disabled.load(Ordering::Relaxed) {
            return;
        }
        let mut inner = self.inner.lock();
        if let Some(writer) = inner.writer.as_mut() {
            if let Err(e) = writer.flush() {
                self.disable(&mut inner, e);
            }
        }
    }

    fn disable(&self, inner: &mut SinkInner, error: std::io::Error) {
        inner.write_errors += 1;
        inner.writer = None; // drop closes the file
        self.disabled.store(true, Ordering::Relaxed);
        // Report once; the runtime must never abort the target program
        // over a journaling failure.
        eprintln!(
            "caliper: journal {}: write error, journaling disabled: {error}",
            self.path.display()
        );
    }

    /// Current accounting.
    pub fn stats(&self) -> JournalStats {
        let inner = self.inner.lock();
        let counters = inner
            .writer
            .as_ref()
            .map(|w| w.counters())
            .unwrap_or_default();
        JournalStats {
            path: self.path.clone(),
            appended: counters.appended,
            durable: counters.durable,
            flushes: counters.flushes,
            forced_flushes: counters.forced_flushes,
            syncs: counters.syncs,
            retries: counters.retries,
            next_seq: inner.next_seq,
            write_errors: inner.write_errors,
            disabled: self.disabled.load(Ordering::Relaxed),
        }
    }
}

impl Drop for JournalSink {
    fn drop(&mut self) {
        // Best-effort final drain (JournalWriter's own drop also
        // flushes; doing it here keeps the accounting consistent).
        self.flush();
    }
}

impl std::fmt::Debug for JournalSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JournalSink({})", self.path.display())
    }
}

// ---- process-wide flush hooks ----

/// Live journal sinks, flushed by the panic hook. Weak references so
/// the registry never keeps a journal (or its file handle) alive.
static SINKS: Mutex<Vec<Weak<JournalSink>>> = Mutex::new(Vec::new());
static HOOK: Once = Once::new();

fn register_sink(sink: &Arc<JournalSink>) {
    let mut sinks = SINKS.lock();
    sinks.retain(|w| w.strong_count() > 0);
    sinks.push(Arc::downgrade(sink));
    drop(sinks);
    HOOK.call_once(install_panic_hook);
}

/// Flush every live journal sink in the process; returns how many were
/// flushed. Called by the panic hook; also useful right before an
/// explicit `abort()`.
pub fn flush_all_journals() -> usize {
    // Snapshot the registry and release its lock before flushing, so a
    // sink's own locking cannot deadlock against registration.
    let sinks: Vec<Weak<JournalSink>> = SINKS.lock().clone();
    let mut flushed = 0;
    for weak in sinks {
        if let Some(sink) = weak.upgrade() {
            sink.flush();
            flushed += 1;
        }
    }
    flushed
}

fn install_panic_hook() {
    let previous = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        // Drain the journals first: the previous hook may print a
        // backtrace and the process may abort right after.
        flush_all_journals();
        previous(info);
    }));
}

// ---- the journal service ----

/// The `journal` service: a per-thread consumer that forwards every
/// completed snapshot to the channel's shared [`JournalSink`].
pub struct JournalService {
    sink: Arc<JournalSink>,
}

impl JournalService {
    /// Create a service instance forwarding to `sink`.
    pub fn new(sink: Arc<JournalSink>) -> JournalService {
        JournalService { sink }
    }
}

impl Service for JournalService {
    fn name(&self) -> &'static str {
        "journal"
    }

    fn consume(&mut self, _ctx: &ProcCtx<'_>, rec: &SnapshotRecord) {
        self.sink.append(rec);
    }

    fn flush(&mut self, _ctx: &ProcCtx<'_>, _out: &mut Dataset) {
        // The journal's output lives in its file, not the dataset;
        // thread flush just drains the shared buffer.
        self.sink.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> Config {
        Config::new()
            .set("services", "event,timer")
            .set("journal.enable", "true")
            .set("journal.path", "/tmp/x.cali")
    }

    #[test]
    fn config_defaults_and_overrides() {
        let cfg = JournalConfig::from_config(&base()).unwrap().unwrap();
        assert_eq!(cfg.flush_interval, 1);
        assert_eq!(cfg.max_buffer, 1 << 20);
        assert!(!cfg.fsync);
        assert!(!cfg.append);

        let cfg = JournalConfig::from_config(
            &base()
                .set("journal.flush_interval", "64")
                .set("journal.fsync", "1")
                .set("journal.append", "true"),
        )
        .unwrap()
        .unwrap();
        assert_eq!(cfg.flush_interval, 64);
        assert!(cfg.fsync);
        assert!(cfg.append);

        // `journal` in the services list also enables it.
        let cfg = JournalConfig::from_config(
            &Config::new()
                .set("services", "event,journal")
                .set("journal.path", "j.cali"),
        )
        .unwrap();
        assert!(cfg.is_some());

        assert!(JournalConfig::from_config(&Config::new())
            .unwrap()
            .is_none());
    }

    #[test]
    fn config_errors_are_descriptive() {
        let err = JournalConfig::from_config(&Config::new().set("journal.enable", "true"))
            .unwrap_err();
        assert!(err.message.contains("journal.path"), "{err}");
        assert_eq!(err.line, 0);

        let err = JournalConfig::from_config(&base().set("journal.flush_interval", "soon"))
            .unwrap_err();
        assert!(err.message.contains("journal.flush_interval"), "{err}");
        assert!(err.to_string().contains("soon"), "{err}");

        let err = JournalConfig::from_config(&base().set("journal.fsync", "yes")).unwrap_err();
        assert!(err.message.contains("journal.fsync"), "{err}");

        let err =
            JournalConfig::from_config(&base().set("journal.flush_interval", "0")).unwrap_err();
        assert!(err.message.contains("at least 1"), "{err}");

        // Malformed journal keys are rejected even while disabled.
        let err = JournalConfig::from_config(
            &Config::new().set("journal.flush_interval", "nope"),
        )
        .unwrap_err();
        assert!(err.message.contains("journal.flush_interval"), "{err}");
    }

    #[test]
    fn write_error_disables_the_sink_without_panicking() {
        let store = Arc::new(AttributeStore::new());
        let tree = Arc::new(ContextTree::new());
        let cfg = JournalConfig {
            path: PathBuf::from("/dev/full"),
            flush_interval: 1,
            max_buffer: 1 << 20,
            fsync: false,
            append: false,
        };
        // /dev/full accepts open but fails writes; skip the test where
        // it does not exist.
        let Ok(sink) = JournalSink::create(&cfg, &store, &tree) else {
            return;
        };
        let rec = SnapshotRecord::new();
        sink.append(&rec);
        sink.append(&rec); // no-op after disable
        let stats = sink.stats();
        assert!(stats.disabled);
        assert_eq!(stats.write_errors, 1);
    }
}
