//! # caliper-runtime — the on-line performance monitoring runtime
//!
//! The runtime library of the reproduction (paper §IV-A/§IV-B): a
//! per-process [`Caliper`] instance holds the attribute dictionary,
//! context tree and configuration; per-thread [`ThreadScope`]s own a
//! blackboard and service instances and process snapshots without
//! locks.
//!
//! Data flow (Figure 2 of the paper):
//!
//! ```text
//!  begin/end/set ──► blackboard update
//!        │ (event service)            (sampler service)
//!        ▼                                   ▼
//!   snapshot: compressed blackboard copy + trigger info
//!        │ augment: timer adds time.duration
//!        ▼
//!   consume: trace buffers it / aggregate streams it into the
//!            per-thread aggregation database
//!        │ flush (at thread end)
//!        ▼
//!   process Dataset ──► .cali file ──► off-line cross-process and
//!                                      analytical aggregation
//! ```
//!
//! ```
//! use caliper_runtime::{Caliper, Clock, Config};
//! use caliper_query::run_query;
//!
//! let config = Config::event_aggregate("function", "count,sum(time.duration)");
//! let caliper = Caliper::with_clock(config, Clock::virtual_clock());
//! let function = caliper.region_attribute("function");
//!
//! let mut scope = caliper.make_thread_scope();
//! for _ in 0..10 {
//!     scope.begin(&function, "foo");
//!     scope.advance_time(1_000); // 1 us of (virtual) work
//!     scope.end(&function).unwrap();
//! }
//! scope.flush();
//!
//! let profile = caliper.take_dataset();
//! let result = run_query(&profile, "SELECT * FORMAT table").unwrap();
//! assert_eq!(profile.len(), 2); // entries: foo, (outside foo)
//! assert!(result.render().contains("foo"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod annotation;
pub mod blackboard;
pub mod clock;
pub mod config;
pub mod global;
pub mod journal;
pub mod runtime;
pub mod services;
pub mod thread;

pub use annotation::Annotation;
pub use blackboard::{Blackboard, NestingError};
pub use clock::Clock;
pub use config::{Config, ConfigError};
pub use journal::{flush_all_journals, JournalConfig, JournalService, JournalSink, JournalStats};
pub use runtime::{Caliper, Channel};
pub use services::{
    AggregateService, CountersService, ProcCtx, Service, TimerService, TraceService, Trigger,
};
pub use thread::ThreadScope;
