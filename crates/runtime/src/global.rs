//! Process-global annotation API: `mark_begin` / `mark_end` exactly as
//! in the paper's Listing 1.
//!
//! The explicit [`ThreadScope`] handles give full
//! control, but instrumenting existing code is easier with implicit
//! state — which is what Caliper's C/C++ annotation macros provide.
//! This module keeps one process-global [`Caliper`] and a thread-local
//! scope per thread:
//!
//! ```
//! use caliper_runtime::global;
//! use caliper_runtime::{Clock, Config};
//!
//! global::init_with_clock(
//!     Config::event_aggregate("function,loop.iteration", "count,sum(time.duration)"),
//!     Clock::virtual_clock(),
//! );
//!
//! for i in 0..4i64 {
//!     global::mark_begin("loop.iteration", i);
//!     global::mark_begin("function", "foo");
//!     global::advance_time(40_000); // ... work ...
//!     global::mark_end("function");
//!     global::mark_end("loop.iteration");
//! }
//!
//! let profile = global::flush();
//! assert!(!profile.is_empty());
//! ```
//!
//! Values choose the attribute flavor automatically: string values
//! create nested region attributes, numeric values create immediate
//! (`AS_VALUE`) attributes — matching how Listing 1 uses `"function"`
//! vs. `"loop.iteration"`.

use std::cell::RefCell;
use std::sync::{Arc, OnceLock, RwLock};

use caliper_data::{Attribute, Properties, Value, ValueType};
use caliper_format::Dataset;

use crate::clock::Clock;
use crate::config::Config;
use crate::runtime::Caliper;
use crate::thread::ThreadScope;

static INSTANCE: OnceLock<RwLock<Arc<Caliper>>> = OnceLock::new();

thread_local! {
    static SCOPE: RefCell<Option<ThreadScope>> = const { RefCell::new(None) };
}

/// Initialize the global runtime with a real clock. Returns `false` if
/// it was already initialized (the existing instance stays active).
pub fn init(config: Config) -> bool {
    init_with_clock(config, Clock::real())
}

/// Initialize the global runtime with an explicit clock. If already
/// initialized, *replaces* the instance (new thread scopes serve the
/// new instance; this thread's scope is reset) and returns `false`.
pub fn init_with_clock(config: Config, clock: Clock) -> bool {
    let caliper = Caliper::with_clock(config, clock);
    match INSTANCE.set(RwLock::new(Arc::clone(&caliper))) {
        Ok(()) => true,
        Err(_) => {
            // Poison-tolerant: a panic in another thread while holding
            // this lock must not cascade into every later annotation.
            *INSTANCE
                .get()
                .expect("just checked")
                .write()
                .unwrap_or_else(std::sync::PoisonError::into_inner) = caliper;
            SCOPE.with(|scope| *scope.borrow_mut() = None);
            false
        }
    }
}

/// The global runtime, initializing with [`Config::from_env`] on first
/// use (the `CALI_…` environment variables, as in real Caliper).
pub fn instance() -> Arc<Caliper> {
    let lock = INSTANCE.get_or_init(|| RwLock::new(Caliper::new(Config::from_env())));
    Arc::clone(&lock.read().unwrap_or_else(std::sync::PoisonError::into_inner))
}

/// Run `f` with this thread's scope (created on first use). The scope
/// is re-created if the global instance was re-initialized.
pub fn with_scope<R>(f: impl FnOnce(&mut ThreadScope) -> R) -> R {
    SCOPE.with(|cell| {
        let mut slot = cell.borrow_mut();
        let current = instance();
        let stale = slot
            .as_ref()
            .map(|s| !Arc::ptr_eq(s.caliper(), &current))
            .unwrap_or(true);
        if stale {
            *slot = Some(current.make_thread_scope());
        }
        f(slot.as_mut().expect("scope just ensured"))
    })
}

fn attribute_for(value: &Value, name: &str) -> Attribute {
    let caliper = instance();
    match value {
        Value::Str(_) => caliper.attribute(name, ValueType::Str, Properties::NESTED),
        other => caliper.attribute(name, other.value_type(), Properties::AS_VALUE),
    }
}

/// `mark_begin(name, value)` from Listing 1: push `name=value`.
pub fn mark_begin(name: &str, value: impl Into<Value>) {
    let value = value.into();
    let attr = attribute_for(&value, name);
    with_scope(|scope| scope.begin(&attr, value));
}

/// `mark_end(name)`: pop the innermost value of `name`. Unbalanced ends
/// are debug-asserted and otherwise ignored (matching the forgiving C
/// annotation API).
pub fn mark_end(name: &str) {
    if let Some(attr) = instance().store().find(name) {
        with_scope(|scope| {
            let result = scope.end(&attr);
            debug_assert!(result.is_ok(), "unbalanced mark_end({name}): {result:?}");
        });
    } else {
        debug_assert!(false, "mark_end for unknown attribute '{name}'");
    }
}

/// Replace the innermost value of `name`.
pub fn mark_set(name: &str, value: impl Into<Value>) {
    let value = value.into();
    let attr = attribute_for(&value, name);
    with_scope(|scope| scope.set(&attr, value));
}

/// Trigger an explicit snapshot on this thread.
pub fn snapshot() {
    with_scope(|scope| scope.snapshot());
}

/// Advance a virtual global clock (no-op on a real clock).
pub fn advance_time(ns: u64) {
    with_scope(|scope| scope.advance_time(ns));
}

/// Flush this thread's scope and take the default channel's dataset.
pub fn flush() -> Dataset {
    with_scope(|scope| scope.flush());
    instance().take_dataset()
}

#[cfg(test)]
mod tests {
    // The global API is process-wide state; all assertions live in one
    // test so parallel test execution cannot interleave instances.
    use super::*;

    #[test]
    fn listing1_through_the_global_api() {
        init_with_clock(
            Config::event_aggregate("function,loop.iteration", "count,sum(time.duration)"),
            Clock::virtual_clock(),
        );
        for i in 0..4i64 {
            mark_begin("loop.iteration", i);
            for (name, us) in [("foo", 10u64), ("foo", 30), ("bar", 10)] {
                mark_begin("function", name);
                advance_time(us * 1_000);
                mark_end("function");
            }
            mark_end("loop.iteration");
        }
        let profile = flush();
        let result = caliper_query::run_query(
            &profile,
            "AGGREGATE sum(sum#time.duration) AS t WHERE function=foo, loop.iteration=0 \
             GROUP BY function, loop.iteration",
        )
        .unwrap();
        assert_eq!(result.records.len(), 1);
        let t = result.store.find("t").unwrap();
        assert_eq!(result.records[0].get(t.id()).unwrap().to_f64(), Some(40.0));

        // set + snapshot also route through the global scope.
        mark_set("phase", "solve");
        snapshot();
        mark_end("phase");

        // Re-initialization replaces the instance and resets the scope.
        assert!(!init_with_clock(
            Config::event_trace(),
            Clock::virtual_clock()
        ));
        mark_begin("function", "fresh");
        mark_end("function");
        let trace = flush();
        assert_eq!(trace.len(), 2);
    }
}
