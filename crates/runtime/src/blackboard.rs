//! The blackboard buffer (§IV-A): the globally visible data structure
//! that instrumentation and data collectors update, from which snapshots
//! take a compressed copy.
//!
//! Each monitored thread has its own blackboard (thread scope). Nested
//! attributes (`begin`/`end` hierarchies) are stored as a single context
//! -tree node chain — the compressed representation; a snapshot copies
//! one `u32` node reference no matter how deep the nesting. `AS_VALUE`
//! attributes keep explicit per-attribute value stacks and are copied
//! into snapshots as immediate entries.

use std::sync::Arc;

use caliper_data::{
    AttrId, Attribute, ContextTree, FxHashMap, SnapshotRecord, Value, NODE_NONE,
};

/// Error from unbalanced annotation nesting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NestingError {
    /// The attribute label involved.
    pub attribute: String,
    /// Description of the violation.
    pub message: String,
}

impl std::fmt::Display for NestingError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "nesting error on '{}': {}", self.attribute, self.message)
    }
}

impl std::error::Error for NestingError {}

/// A per-thread blackboard.
pub struct Blackboard {
    tree: Arc<ContextTree>,
    /// Current context-tree node (top of the combined nesting stack).
    node: caliper_data::NodeId,
    /// Value stacks for AS_VALUE attributes.
    immediate: FxHashMap<AttrId, Vec<Value>>,
    /// Number of entries per nested attribute currently on the node
    /// chain (for underflow diagnostics).
    depth: FxHashMap<AttrId, u32>,
}

impl Blackboard {
    /// Create an empty blackboard over the process's context tree.
    pub fn new(tree: Arc<ContextTree>) -> Blackboard {
        Blackboard {
            tree,
            node: NODE_NONE,
            immediate: FxHashMap::default(),
            depth: FxHashMap::default(),
        }
    }

    /// Current context node (for tests/diagnostics).
    pub fn current_node(&self) -> caliper_data::NodeId {
        self.node
    }

    /// Begin a region: push `attr=value`.
    pub fn begin(&mut self, attr: &Attribute, value: Value) {
        if attr.is_as_value() {
            self.immediate.entry(attr.id()).or_default().push(value);
        } else {
            self.node = self.tree.get_child(self.node, attr.id(), &value);
            *self.depth.entry(attr.id()).or_insert(0) += 1;
        }
    }

    /// End a region: pop the innermost entry of `attr`.
    ///
    /// For nested attributes, out-of-order ends are tolerated: the
    /// nearest entry of `attr` is removed from the chain and the
    /// remainder is rebuilt (real Caliper reports this as a nesting
    /// error; we remove-and-rebuild, which keeps the data consistent).
    pub fn end(&mut self, attr: &Attribute) -> Result<(), NestingError> {
        if attr.is_as_value() {
            let stack = self.immediate.entry(attr.id()).or_default();
            if stack.pop().is_none() {
                return Err(NestingError {
                    attribute: attr.name().to_string(),
                    message: "end without matching begin".into(),
                });
            }
            return Ok(());
        }
        let depth = self.depth.entry(attr.id()).or_insert(0);
        if *depth == 0 {
            return Err(NestingError {
                attribute: attr.name().to_string(),
                message: "end without matching begin".into(),
            });
        }
        *depth -= 1;

        // Fast path: the innermost entry is the one being ended.
        if let Some(node) = self.tree.node(self.node) {
            if node.attr == attr.id() {
                self.node = node.parent;
                return Ok(());
            }
        }
        // Slow path: remove the nearest `attr` entry mid-chain and
        // rebuild the chain above it.
        let path = self.tree.path(self.node);
        let Some(pos) = path.iter().rposition(|(a, _)| *a == attr.id()) else {
            return Err(NestingError {
                attribute: attr.name().to_string(),
                message: "attribute not on the blackboard".into(),
            });
        };
        let mut node = if pos == 0 {
            NODE_NONE
        } else {
            // Rebuild up to (excluding) pos — the prefix is unchanged,
            // so walking get_child re-finds existing nodes.
            let mut n = NODE_NONE;
            for (a, v) in &path[..pos] {
                n = self.tree.get_child(n, *a, v);
            }
            n
        };
        for (a, v) in &path[pos + 1..] {
            node = self.tree.get_child(node, *a, v);
        }
        self.node = node;
        Ok(())
    }

    /// Set (replace) the innermost value of `attr` without nesting: an
    /// `end` (if present) followed by a `begin`.
    pub fn set(&mut self, attr: &Attribute, value: Value) {
        if attr.is_as_value() {
            let stack = self.immediate.entry(attr.id()).or_default();
            stack.pop();
            stack.push(value);
        } else {
            if self.depth.get(&attr.id()).copied().unwrap_or(0) > 0 {
                let _ = self.end(attr);
            }
            self.begin(attr, value);
        }
    }

    /// Innermost value of `attr` currently on the blackboard.
    pub fn get(&self, attr: &Attribute) -> Option<Value> {
        if attr.is_as_value() {
            self.immediate.get(&attr.id()).and_then(|s| s.last().cloned())
        } else {
            let node = self.tree.find_ancestor(self.node, attr.id())?;
            self.tree.node(node).map(|n| n.value)
        }
    }

    /// Take a compressed snapshot of the current blackboard contents.
    pub fn snapshot(&self) -> SnapshotRecord {
        let mut rec = SnapshotRecord::new();
        if self.node != NODE_NONE {
            rec.push_node(self.node);
        }
        for (attr, stack) in &self.immediate {
            if let Some(value) = stack.last() {
                rec.push_imm(*attr, value.clone());
            }
        }
        rec
    }

    /// True if nothing is on the blackboard.
    pub fn is_empty(&self) -> bool {
        self.node == NODE_NONE && self.immediate.values().all(Vec::is_empty)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use caliper_data::{AttributeStore, Properties, ValueType};

    fn setup() -> (Arc<AttributeStore>, Arc<ContextTree>, Blackboard) {
        let store = Arc::new(AttributeStore::new());
        let tree = Arc::new(ContextTree::new());
        let bb = Blackboard::new(Arc::clone(&tree));
        (store, tree, bb)
    }

    #[test]
    fn begin_end_nested() {
        let (store, tree, mut bb) = setup();
        let func = store
            .create("function", ValueType::Str, Properties::NESTED)
            .unwrap();
        bb.begin(&func, Value::str("main"));
        bb.begin(&func, Value::str("foo"));
        assert_eq!(bb.get(&func), Some(Value::str("foo")));
        let snap = bb.snapshot();
        let flat = snap.unpack(&tree);
        assert_eq!(flat.path_string(func.id()), Some(Value::str("main/foo")));
        bb.end(&func).unwrap();
        assert_eq!(bb.get(&func), Some(Value::str("main")));
        bb.end(&func).unwrap();
        assert!(bb.is_empty());
    }

    #[test]
    fn interleaved_attributes_share_one_chain() {
        let (store, tree, mut bb) = setup();
        let func = store
            .create("function", ValueType::Str, Properties::NESTED)
            .unwrap();
        let lp = store
            .create("loop", ValueType::Str, Properties::NESTED)
            .unwrap();
        bb.begin(&func, Value::str("main"));
        bb.begin(&lp, Value::str("mainloop"));
        bb.begin(&func, Value::str("foo"));
        let flat = bb.snapshot().unpack(&tree);
        assert_eq!(flat.path_string(func.id()), Some(Value::str("main/foo")));
        assert_eq!(flat.get(lp.id()), Some(&Value::str("mainloop")));
    }

    #[test]
    fn out_of_order_end_rebuilds_chain() {
        let (store, tree, mut bb) = setup();
        let func = store
            .create("function", ValueType::Str, Properties::NESTED)
            .unwrap();
        let lp = store
            .create("loop", ValueType::Str, Properties::NESTED)
            .unwrap();
        bb.begin(&func, Value::str("main"));
        bb.begin(&lp, Value::str("mainloop"));
        bb.begin(&func, Value::str("foo"));
        // End the loop while `foo` is still open.
        bb.end(&lp).unwrap();
        let flat = bb.snapshot().unpack(&tree);
        assert_eq!(flat.path_string(func.id()), Some(Value::str("main/foo")));
        assert!(!flat.contains(lp.id()));
    }

    #[test]
    fn end_underflow_is_an_error() {
        let (store, _tree, mut bb) = setup();
        let func = store
            .create("function", ValueType::Str, Properties::NESTED)
            .unwrap();
        assert!(bb.end(&func).is_err());
        let imm = store
            .create("x", ValueType::Int, Properties::AS_VALUE)
            .unwrap();
        assert!(bb.end(&imm).is_err());
    }

    #[test]
    fn as_value_attributes_are_immediate() {
        let (store, tree, mut bb) = setup();
        let iter = store
            .create("loop.iteration", ValueType::Int, Properties::AS_VALUE)
            .unwrap();
        bb.begin(&iter, Value::Int(3));
        let flat = bb.snapshot().unpack(&tree);
        assert_eq!(flat.get(iter.id()), Some(&Value::Int(3)));
        // tree untouched
        assert_eq!(tree.len(), 0);
        bb.end(&iter).unwrap();
        assert!(bb.is_empty());
    }

    #[test]
    fn set_replaces_innermost() {
        let (store, _tree, mut bb) = setup();
        let iter = store
            .create("iteration", ValueType::Int, Properties::AS_VALUE)
            .unwrap();
        bb.set(&iter, Value::Int(1));
        bb.set(&iter, Value::Int(2));
        assert_eq!(bb.get(&iter), Some(Value::Int(2)));
        bb.end(&iter).unwrap();
        assert!(bb.is_empty());

        let phase = store
            .create("phase", ValueType::Str, Properties::NESTED)
            .unwrap();
        bb.set(&phase, Value::str("init"));
        bb.set(&phase, Value::str("solve"));
        assert_eq!(bb.get(&phase), Some(Value::str("solve")));
        bb.end(&phase).unwrap();
        assert!(bb.is_empty());
    }

    #[test]
    fn snapshot_is_compressed() {
        let (store, _tree, mut bb) = setup();
        let func = store
            .create("function", ValueType::Str, Properties::NESTED)
            .unwrap();
        for i in 0..20 {
            bb.begin(&func, Value::str(format!("f{i}")));
        }
        // 20 nesting levels -> 1 node entry.
        assert_eq!(bb.snapshot().len(), 1);
    }
}
