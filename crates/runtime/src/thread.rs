//! Per-thread instrumentation scope: blackboard + per-channel service
//! instances.
//!
//! All snapshots are processed in the thread that triggered them
//! (§IV-A); a `ThreadScope` owns everything that processing needs, so
//! the snapshot hot path takes no locks — the design property the paper
//! calls out for the aggregation service (§IV-B).
//!
//! The blackboard (program state) is shared by all channels; each
//! channel owns its own service instances, snapshot triggers, and
//! counters, so several aggregation schemes can observe one run.

use std::sync::Arc;

use caliper_data::{Attribute, Value};
use caliper_format::Dataset;
use caliper_query::{parse_query, AggregationSpec};

use crate::blackboard::{Blackboard, NestingError};
use crate::config::Config;
use crate::runtime::{Caliper, Channel};
use crate::services::{
    AggregateService, CountersService, ProcCtx, Service, TimerService, TraceService, Trigger,
};

/// Pre-resolved self-instrumentation handles for one channel scope.
///
/// Resolved once at scope creation so the snapshot hot path never
/// touches the registry's name map — each event costs one relaxed
/// atomic add per enabled channel. When `metrics.enable` is off the
/// whole struct is absent and the hot path performs zero extra atomic
/// operations (the overhead contract in DESIGN.md §8).
struct ScopeMetrics {
    /// `runtime.blackboard.ops`: begin/end/set updates observed.
    blackboard_ops: caliper_data::metrics::Counter,
    /// `runtime.snapshots`: snapshots processed on this channel.
    snapshots: caliper_data::metrics::Counter,
}

/// Per-channel collection state within one thread scope.
struct ChannelScope {
    channel: Arc<Channel>,
    services: Vec<Box<dyn Service>>,
    snapshot_on_event: bool,
    sampler_interval_ns: u64,
    next_sample_ns: u64,
    snapshot_count: u64,
    metrics: Option<ScopeMetrics>,
}

impl ChannelScope {
    fn new(channel: Arc<Channel>, caliper: &Arc<Caliper>) -> ChannelScope {
        let config: &Config = channel.config();
        let store = Arc::clone(caliper.store());
        let mut services: Vec<Box<dyn Service>> = Vec::new();

        // Augmenting services (timer, counters) must run before the
        // consuming services, so they are registered first.
        // A measurement service whose output attribute collides with an
        // application attribute of a different type is skipped with a
        // note — thread setup must never panic on user input (same
        // contract as the aggregate service below).
        if config.service_enabled("timer") {
            let inclusive = config.get_bool("timer.inclusive", false);
            let offset = config.get_bool("timer.offset", false);
            match TimerService::with_options(&store, inclusive, offset) {
                Ok(timer) => services.push(Box::new(timer)),
                Err(e) => eprintln!("caliper: timer service disabled: {e}"),
            }
        }
        if config.service_enabled("counters") {
            let ghz = config
                .get("counters.ghz")
                .and_then(|v| v.parse().ok())
                .unwrap_or(2.1);
            let ipc = config
                .get("counters.ipc")
                .and_then(|v| v.parse().ok())
                .unwrap_or(1.6);
            match CountersService::new(&store, ghz, ipc) {
                Ok(counters) => services.push(Box::new(counters)),
                Err(e) => eprintln!("caliper: counters service disabled: {e}"),
            }
        }
        if config.service_enabled("aggregate") {
            let key = config.get_list("aggregate.key");
            let ops_text = config
                .get("aggregate.ops")
                .unwrap_or("count")
                .trim()
                .to_string();
            // Reuse the query parser for the op list: the runtime
            // configuration speaks the same description language. An
            // invalid op list was already reported as a config error at
            // channel creation ([`Channel::config_errors`]); here the
            // service is simply skipped so thread setup never panics on
            // user input.
            match parse_query(&format!("AGGREGATE {ops_text}")) {
                Ok(parsed) => {
                    let spec = AggregationSpec::new(parsed.ops, key);
                    let max_entries = config.get_u64("aggregate.max_entries", 0) as usize;
                    services.push(Box::new(AggregateService::with_capacity(
                        spec,
                        Arc::clone(&store),
                        max_entries,
                    )));
                }
                Err(_) => debug_assert!(
                    !channel.config_errors().is_empty(),
                    "invalid aggregate.ops must be recorded as a config error"
                ),
            }
        }
        if config.service_enabled("trace") {
            services.push(Box::new(TraceService::new()));
        }
        if let Some(sink) = channel.journal() {
            services.push(Box::new(crate::journal::JournalService::new(Arc::clone(
                sink,
            ))));
        }

        let snapshot_on_event = config.service_enabled("event");
        let sampler_interval_ns = if config.service_enabled("sampler") {
            config.get_u64("sampler.interval.ns", 10_000_000)
        } else {
            0
        };

        let metrics = channel.metrics().map(|m| ScopeMetrics {
            blackboard_ops: m.counter("runtime.blackboard.ops"),
            snapshots: m.counter("runtime.snapshots"),
        });

        ChannelScope {
            channel,
            services,
            snapshot_on_event,
            sampler_interval_ns,
            next_sample_ns: sampler_interval_ns,
            snapshot_count: 0,
            metrics,
        }
    }
}

/// A per-thread instrumentation scope.
///
/// Created via [`Caliper::make_thread_scope`]. Flushes its services'
/// output into the process dataset on [`ThreadScope::flush`] (or on
/// drop, if not flushed explicitly).
pub struct ThreadScope {
    caliper: Arc<Caliper>,
    blackboard: Blackboard,
    channels: Vec<ChannelScope>,
    flushed: bool,
}

impl ThreadScope {
    pub(crate) fn new(caliper: Arc<Caliper>) -> ThreadScope {
        let channels = caliper
            .channels()
            .into_iter()
            .map(|channel| ChannelScope::new(channel, &caliper))
            .collect();
        ThreadScope {
            blackboard: Blackboard::new(Arc::clone(caliper.tree())),
            caliper,
            channels,
            flushed: false,
        }
    }

    /// The owning runtime.
    pub fn caliper(&self) -> &Arc<Caliper> {
        &self.caliper
    }

    /// Direct blackboard access (diagnostics/tests).
    pub fn blackboard(&self) -> &Blackboard {
        &self.blackboard
    }

    /// Snapshots taken on this thread so far, summed over channels.
    pub fn snapshot_count(&self) -> u64 {
        self.channels.iter().map(|c| c.snapshot_count).sum()
    }

    /// Sum of the services' current output record counts, over channels.
    pub fn output_records(&self) -> usize {
        self.channels
            .iter()
            .flat_map(|c| c.services.iter())
            .map(|s| s.output_records())
            .sum()
    }

    fn run_snapshot(&mut self, channel_idx: usize, trigger: Trigger) {
        let mut rec = self.blackboard.snapshot();
        let ctx = ProcCtx {
            store: self.caliper.store(),
            tree: self.caliper.tree(),
            clock: self.caliper.clock(),
            trigger,
        };
        let channel = &mut self.channels[channel_idx];
        for service in &mut channel.services {
            service.augment(&ctx, &mut rec);
        }
        for service in &mut channel.services {
            service.consume(&ctx, &rec);
        }
        channel.snapshot_count += 1;
        if let Some(m) = &channel.metrics {
            m.snapshots.inc();
        }
    }

    /// Count one blackboard update on every metrics-enabled channel.
    /// With metrics off this touches no atomics (see [`ScopeMetrics`]).
    fn count_blackboard_op(&self) {
        for channel in &self.channels {
            if let Some(m) = &channel.metrics {
                m.blackboard_ops.inc();
            }
        }
    }

    /// Trigger an explicit snapshot through the API (on every channel).
    pub fn snapshot(&mut self) {
        self.maybe_sample();
        for i in 0..self.channels.len() {
            self.run_snapshot(i, Trigger::User);
        }
    }

    /// Catch up the sampling timers: trigger one snapshot per elapsed
    /// sampling period, per sampling channel. Called from every
    /// instrumentation hook and from [`ThreadScope::advance_time`].
    fn maybe_sample(&mut self) {
        let now = self.caliper.clock().now_ns();
        for i in 0..self.channels.len() {
            if self.channels[i].sampler_interval_ns == 0 {
                continue;
            }
            while self.channels[i].next_sample_ns <= now {
                self.run_snapshot(i, Trigger::Sample);
                self.channels[i].next_sample_ns += self.channels[i].sampler_interval_ns;
            }
        }
    }

    fn event_snapshots(&mut self, trigger: Trigger) {
        for i in 0..self.channels.len() {
            if self.channels[i].snapshot_on_event {
                self.run_snapshot(i, trigger);
            }
        }
    }

    /// Begin a region: `mark_begin` from the paper's Listing 1.
    ///
    /// With the event service enabled, a snapshot is taken *before* the
    /// blackboard update, so the interval since the previous snapshot is
    /// attributed to the enclosing context.
    pub fn begin(&mut self, attr: &Attribute, value: impl Into<Value>) {
        self.maybe_sample();
        self.event_snapshots(Trigger::Begin(attr.id()));
        self.count_blackboard_op();
        self.blackboard.begin(attr, value.into());
    }

    /// End a region: `mark_end`. With the event service enabled, a
    /// snapshot is taken *before* the pop, so the region's own time is
    /// attributed to it.
    pub fn end(&mut self, attr: &Attribute) -> Result<(), NestingError> {
        self.maybe_sample();
        self.event_snapshots(Trigger::End(attr.id()));
        self.count_blackboard_op();
        self.blackboard.end(attr)
    }

    /// Replace the innermost value of `attr` (a `set` event).
    pub fn set(&mut self, attr: &Attribute, value: impl Into<Value>) {
        self.maybe_sample();
        self.event_snapshots(Trigger::Set(attr.id()));
        self.count_blackboard_op();
        self.blackboard.set(attr, value.into());
    }

    /// Run `body` inside a region (begin/end pair around it).
    pub fn scoped<R>(
        &mut self,
        attr: &Attribute,
        value: impl Into<Value>,
        body: impl FnOnce(&mut ThreadScope) -> R,
    ) -> R {
        self.begin(attr, value);
        let result = body(self);
        self.end(attr).expect("scoped region is balanced");
        result
    }

    /// Advance a virtual clock and let the samplers catch up. The
    /// workload models use this to account simulated compute time.
    pub fn advance_time(&mut self, ns: u64) {
        self.caliper.clock().advance_ns(ns);
        self.maybe_sample();
    }

    /// Flush all channels' service output into their process datasets.
    /// Idempotent.
    pub fn flush(&mut self) {
        if self.flushed {
            return;
        }
        self.flushed = true;
        let ctx = ProcCtx {
            store: self.caliper.store(),
            tree: self.caliper.tree(),
            clock: self.caliper.clock(),
            trigger: Trigger::User,
        };
        for channel in &mut self.channels {
            let mut out = Dataset::with_context(
                Arc::clone(self.caliper.store()),
                Arc::clone(self.caliper.tree()),
            );
            for service in &mut channel.services {
                service.flush(&ctx, &mut out);
            }
            channel.channel.collect(out, channel.snapshot_count);
        }
    }
}

impl Drop for ThreadScope {
    fn drop(&mut self) {
        self.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::Clock;
    use crate::config::Config;
    use caliper_data::Value;
    use caliper_query::run_query;

    fn run_listing1(config: Config) -> (Arc<Caliper>, Dataset) {
        // The paper's Listing 1: a 4-iteration loop calling foo twice
        // and bar once per iteration, with the loop iteration annotated.
        let caliper = Caliper::with_clock(config, Clock::virtual_clock());
        let function = caliper.region_attribute("function");
        let iteration = caliper.attribute(
            "loop.iteration",
            caliper_data::ValueType::Int,
            caliper_data::Properties::AS_VALUE,
        );
        let mut scope = caliper.make_thread_scope();
        for i in 0..4i64 {
            scope.begin(&iteration, i);
            for (name, time_us) in [("foo", 15u64), ("foo", 25), ("bar", 20)] {
                scope.begin(&function, name);
                scope.advance_time(time_us * 1000);
                scope.end(&function).unwrap();
            }
            scope.end(&iteration).unwrap();
        }
        scope.flush();
        let ds = caliper.take_dataset();
        (caliper, ds)
    }

    #[test]
    fn event_aggregation_produces_listing1_profile() {
        let config = Config::event_aggregate("function,loop.iteration", "count,sum(time.duration)");
        let (_caliper, ds) = run_listing1(config);
        let result = run_query(
            &ds,
            "AGGREGATE sum(aggregate.count), sum(sum#time.duration) GROUP BY function, loop.iteration",
        )
        .unwrap();
        // keys: (foo,0..3), (bar,0..3), (none,0..3), (none,none)
        assert!(result.records.len() >= 12, "{}", result.render());
        // foo in iteration 0 took 40 us.
        let foo0 = result.lookup(
            |r, s| {
                let f = s.find("function").unwrap();
                let i = s.find("loop.iteration").unwrap();
                r.get(f.id()) == Some(&Value::str("foo")) && r.get(i.id()) == Some(&Value::Int(0))
            },
            "sum#sum#time.duration",
        );
        assert_eq!(foo0, Some(Value::Float(40.0)));
    }

    #[test]
    fn trace_stores_every_snapshot() {
        let (caliper, ds) = run_listing1(Config::event_trace());
        // Each iteration: begin(iter) + 3 * (begin+end) + end(iter) = 8
        // event snapshots; 4 iterations = 32.
        assert_eq!(caliper.total_snapshots(), 32);
        assert_eq!(ds.len(), 32);
    }

    #[test]
    fn aggregation_output_is_much_smaller_than_trace() {
        let config = Config::event_aggregate("function", "count,sum(time.duration)");
        let (caliper, ds) = run_listing1(config);
        assert_eq!(caliper.total_snapshots(), 32);
        // keys: foo, bar, none -> 3 records
        assert_eq!(ds.len(), 3);
    }

    #[test]
    fn sampling_mode_counts_are_deterministic() {
        // 4 iterations x 60 us of work = 240 us of virtual time; with a
        // 10 us sampling interval the sampler fires 24 times.
        let config = Config::sampled_trace(10_000);
        let (caliper, ds) = run_listing1(config);
        assert_eq!(caliper.total_snapshots(), 24);
        assert_eq!(ds.len(), 24);
    }

    #[test]
    fn sampled_aggregation_counts_samples_per_kernel() {
        let config = Config::sampled_aggregate(10_000, "function", "count");
        let (_caliper, ds) = run_listing1(config);
        let result = run_query(&ds, "AGGREGATE sum(aggregate.count) GROUP BY function").unwrap();
        // All 24 samples land while some function is active (work is
        // only accounted inside regions).
        let total: u64 = result
            .records
            .iter()
            .filter_map(|r| {
                let attr = result.store.find("sum#aggregate.count")?;
                r.get(attr.id())?.to_u64()
            })
            .sum();
        assert_eq!(total, 24);
    }

    #[test]
    fn baseline_collects_nothing() {
        let (caliper, ds) = run_listing1(Config::baseline());
        assert_eq!(caliper.total_snapshots(), 0);
        assert!(ds.is_empty());
    }

    #[test]
    fn scoped_is_balanced() {
        let caliper = Caliper::with_clock(Config::event_trace(), Clock::virtual_clock());
        let function = caliper.region_attribute("function");
        let mut scope = caliper.make_thread_scope();
        let out = scope.scoped(&function, "foo", |scope| {
            assert_eq!(scope.blackboard().get(&function), Some(Value::str("foo")));
            42
        });
        assert_eq!(out, 42);
        assert!(scope.blackboard().is_empty());
    }

    #[test]
    fn drop_flushes_automatically() {
        let caliper = Caliper::with_clock(Config::event_trace(), Clock::virtual_clock());
        let function = caliper.region_attribute("function");
        {
            let mut scope = caliper.make_thread_scope();
            scope.begin(&function, "foo");
            scope.end(&function).unwrap();
        } // dropped here
        assert_eq!(caliper.take_dataset().len(), 2);
        assert_eq!(caliper.flushed_threads(), 1);
    }

    #[test]
    fn multiple_threads_aggregate_independently() {
        let config = Config::event_aggregate("function", "count");
        let caliper = Caliper::with_clock(config, Clock::virtual_clock());
        let function = caliper.region_attribute("function");
        let mut handles = Vec::new();
        for _ in 0..4 {
            let caliper = Arc::clone(&caliper);
            let function = function.clone();
            handles.push(std::thread::spawn(move || {
                let mut scope = caliper.make_thread_scope();
                for _ in 0..10 {
                    scope.begin(&function, "work");
                    scope.end(&function).unwrap();
                }
                scope.flush();
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let ds = caliper.take_dataset();
        // Per-thread DBs: each thread contributes its own entries
        // ("we can compute aggregation results individually for each
        // thread, but not a total result across all threads" — §IV-B);
        // the cross-thread total requires post-processing:
        let result = run_query(&ds, "AGGREGATE sum(aggregate.count) GROUP BY function").unwrap();
        // End-event snapshots carry function=work (10 per thread); the
        // begin-event snapshots are taken before the push and land in
        // the no-function group.
        let work = result.lookup(
            |r, s| {
                let f = s.find("function").unwrap();
                r.get(f.id()) == Some(&Value::str("work"))
            },
            "sum#aggregate.count",
        );
        assert_eq!(work, Some(Value::UInt(40)));
        let attr = result.store.find("sum#aggregate.count").unwrap();
        let total: u64 = result
            .records
            .iter()
            .filter_map(|r| r.get(attr.id())?.to_u64())
            .sum();
        assert_eq!(total, 80); // 4 threads x 10 x 2 events
        assert_eq!(caliper.flushed_threads(), 4);
    }

    #[test]
    fn channels_created_after_scope_are_not_served() {
        let caliper = Caliper::with_clock(Config::event_trace(), Clock::virtual_clock());
        let function = caliper.region_attribute("function");
        let mut scope = caliper.make_thread_scope();
        let late = caliper.create_channel("late", Config::event_trace());
        scope.begin(&function, "x");
        scope.end(&function).unwrap();
        scope.flush();
        assert_eq!(caliper.take_dataset().len(), 2);
        assert!(late.take_dataset().is_empty());
    }
}
