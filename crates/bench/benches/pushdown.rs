//! Criterion micro-benchmarks: CALB v2 zone-map predicate pushdown.
//!
//! One group, `selective_where`, runs the same high-selectivity query
//! (`WHERE rank = <last>` matches 1 of 64 block-aligned rank clusters)
//! over the same dataset in three configurations:
//!
//! * `v1_scan`      — record-oriented CALB v1: decode everything.
//! * `v2_scan`      — block-columnar v2 without a pushdown: decode
//!   every block (measures pure format overhead).
//! * `v2_pushdown`  — v2 with the WHERE clause pushed down to the
//!   per-block zone maps: 63 of 64 blocks are skipped undecoded.
//!
//! The v2_pushdown/v1_scan ratio is the headline number quoted in
//! `docs/CALB.md` (§ motivation) — expect roughly an order of magnitude
//! on this shape.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

use cali_cli::query_files_streaming_opts;
use caliper_data::{Properties, SnapshotRecord, Value, ValueType, NODE_NONE};
use caliper_format::{Dataset, ReadPolicy, V2WriteOptions};
use caliper_query::{build_pushdown, parse_query};

/// Records per block — kept equal to the v2 writer's block size so
/// every block holds exactly one rank cluster.
const PER_BLOCK: usize = 1024;
/// Rank clusters (= v2 blocks).
const BLOCKS: i64 = 64;

/// A block-clustered dataset: `BLOCKS` runs of `PER_BLOCK` records,
/// each run carrying a single `rank` value — the layout a per-rank
/// merge of process streams naturally produces.
fn clustered_dataset() -> Dataset {
    let mut ds = Dataset::new();
    let rank = ds.attribute("rank", ValueType::Int, Properties::AS_VALUE);
    let func = ds.attribute("function", ValueType::Str, Properties::NESTED);
    let dur = ds.attribute(
        "time.duration",
        ValueType::Float,
        Properties::AS_VALUE | Properties::AGGREGATABLE,
    );
    let regions = ["main", "solve", "exchange", "io"];
    for b in 0..BLOCKS {
        for i in 0..PER_BLOCK {
            let node = ds
                .tree
                .get_child(NODE_NONE, func.id(), &Value::str(regions[i % regions.len()]));
            let mut rec = SnapshotRecord::new();
            rec.push_node(node);
            rec.push_imm(rank.id(), Value::Int(b));
            rec.push_imm(dur.id(), Value::Float(0.5 * i as f64 + b as f64));
            ds.push(rec);
        }
    }
    ds
}

fn bench_selective_where(c: &mut Criterion) {
    let ds = clustered_dataset();
    let dir = std::env::temp_dir().join(format!("cali-bench-pushdown-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let v1_path = dir.join("clustered.calb");
    let v2_path = dir.join("clustered.calb2");
    caliper_format::binary::write_file(&ds, &v1_path).unwrap();
    std::fs::write(
        &v2_path,
        caliper_format::to_binary_v2_with(
            &ds,
            &V2WriteOptions { block_records: PER_BLOCK, footer: true },
        ),
    )
    .unwrap();

    let query = format!(
        "AGGREGATE count, sum(time.duration) WHERE rank = {} \
         GROUP BY function ORDER BY function",
        BLOCKS - 1
    );
    let pushdown = build_pushdown(&parse_query(&query).unwrap(), None);
    let run = |path: &std::path::Path, pd: Option<&caliper_format::Pushdown>| {
        let (result, _) =
            query_files_streaming_opts(&query, &[path], ReadPolicy::Strict, None, pd).unwrap();
        result
    };
    // All three configurations must agree before we time them.
    let baseline = run(&v1_path, None).render();
    assert_eq!(baseline, run(&v2_path, None).render());
    assert_eq!(baseline, run(&v2_path, Some(&pushdown)).render());

    let mut group = c.benchmark_group("selective_where");
    group.throughput(Throughput::Elements(ds.len() as u64));
    group.sample_size(10);
    group.bench_function("v1_scan", |b| {
        b.iter(|| black_box(run(&v1_path, None)))
    });
    group.bench_function("v2_scan", |b| {
        b.iter(|| black_box(run(&v2_path, None)))
    });
    group.bench_function("v2_pushdown", |b| {
        b.iter(|| black_box(run(&v2_path, Some(&pushdown))))
    });
    group.finish();
    let _ = std::fs::remove_dir_all(&dir);
}

criterion_group!(benches, bench_selective_where);
criterion_main!(benches);
