//! Criterion micro-benchmarks: the off-line query path.
//!
//! Groups:
//! * `parser`          — query-text parsing cost.
//! * `aggregate`       — streaming aggregation throughput over a
//!   ParaDiS-shaped record stream, per scheme.
//! * `stream_vs_trace` — ablation: streaming aggregation vs.
//!   trace-then-aggregate (buffer all records, then aggregate).
//! * `merge`           — aggregation-database merge (one tree-reduction
//!   step), as a function of database size.
//! * `cali_codec`      — `.cali` encode/decode throughput.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use caliper_format::Dataset;
use caliper_query::{parse_query, AggregationSpec, Aggregator, Pipeline};
use miniapps::paradis::{self, ParaDisParams};

fn paradis_dataset() -> Dataset {
    paradis::generate_rank(&ParaDisParams::default(), 0)
}

fn bench_parser(c: &mut Criterion) {
    let mut group = c.benchmark_group("parser");
    let queries = [
        ("simple", "AGGREGATE count GROUP BY function"),
        (
            "paper_amr",
            "AGGREGATE sum(time.duration) WHERE not(mpi.function) GROUP BY amr.level,iteration#mainloop",
        ),
        (
            "complex",
            "LET t = scale(time.duration, 0.001) \
             AGGREGATE count, sum(t), min(t), max(t), avg(t) AS mean \
             WHERE not(mpi.function), mpi.rank >= 2, kernel != idle \
             GROUP BY kernel, amr.level ORDER BY mean desc FORMAT json",
        ),
    ];
    for (name, text) in queries {
        group.bench_function(name, |b| {
            b.iter(|| black_box(parse_query(black_box(text)).unwrap()))
        });
    }
    group.finish();
}

fn bench_aggregate(c: &mut Criterion) {
    let ds = paradis_dataset();
    let records: Vec<_> = ds.flat_records().collect();
    let mut group = c.benchmark_group("aggregate");
    group.throughput(Throughput::Elements(records.len() as u64));
    let schemes = [
        ("by_region", "AGGREGATE sum(sum#time.duration), sum(aggregate.count) GROUP BY kernel"),
        (
            "by_region_iter",
            "AGGREGATE sum(sum#time.duration), sum(aggregate.count) GROUP BY kernel, iteration",
        ),
        (
            "filtered",
            "AGGREGATE sum(sum#time.duration) WHERE not(mpi.function) GROUP BY kernel, iteration",
        ),
    ];
    for (name, query) in schemes {
        let spec = AggregationSpec::from_query(&parse_query(query).unwrap());
        group.bench_function(BenchmarkId::new("stream", name), |b| {
            b.iter(|| {
                let mut agg = Aggregator::new(spec.clone(), Arc::clone(&ds.store));
                for rec in &records {
                    agg.add(rec);
                }
                black_box(agg.len())
            });
        });
    }
    group.finish();
}

/// Ablation: streaming reduction (constant memory) vs. buffering the
/// trace and aggregating afterwards (what off-line-only processing
/// would do).
fn bench_stream_vs_trace(c: &mut Criterion) {
    let ds = paradis_dataset();
    let records: Vec<_> = ds.flat_records().collect();
    let spec = AggregationSpec::from_query(
        &parse_query("AGGREGATE sum(sum#time.duration) GROUP BY kernel, iteration").unwrap(),
    );
    let mut group = c.benchmark_group("stream_vs_trace");
    group.throughput(Throughput::Elements(records.len() as u64));

    group.bench_function("stream", |b| {
        b.iter(|| {
            let mut agg = Aggregator::new(spec.clone(), Arc::clone(&ds.store));
            for rec in &records {
                agg.add(rec);
            }
            black_box(agg.len())
        });
    });
    group.bench_function("trace_then_aggregate", |b| {
        b.iter(|| {
            // Buffer the full trace (clone = what the trace service
            // stores), then aggregate the buffer.
            let trace: Vec<_> = records.to_vec();
            let mut agg = Aggregator::new(spec.clone(), Arc::clone(&ds.store));
            for rec in &trace {
                agg.add(rec);
            }
            black_box(agg.len())
        });
    });
    group.finish();
}

fn bench_merge(c: &mut Criterion) {
    let mut group = c.benchmark_group("merge");
    let query = "AGGREGATE sum(sum#time.duration), sum(aggregate.count) GROUP BY kernel, iteration";
    for iterations in [5usize, 25, 100] {
        let params = ParaDisParams {
            iterations,
            ..Default::default()
        };
        let a = paradis::generate_rank(&params, 0);
        let b_ds = paradis::generate_rank(&params, 1);
        let spec = parse_query(query).unwrap();
        group.bench_function(BenchmarkId::new("tree_step_entries", iterations * 85), |bench| {
            bench.iter(|| {
                let mut left = Pipeline::new(spec.clone(), Arc::clone(&a.store));
                left.process_dataset(&a);
                let mut right = Pipeline::new(spec.clone(), Arc::clone(&b_ds.store));
                right.process_dataset(&b_ds);
                left.merge(right);
                black_box(left.len())
            });
        });
    }
    group.finish();
}

fn bench_cali_codec(c: &mut Criterion) {
    let ds = paradis_dataset();
    let text = caliper_format::cali::to_bytes(&ds);
    let binary = caliper_format::binary::to_binary(&ds);
    // Codec ablation: the binary stream should be markedly smaller and
    // faster to parse than the self-describing text stream.
    eprintln!(
        "# cali stream sizes: text {} bytes, binary {} bytes ({:.1}x smaller)",
        text.len(),
        binary.len(),
        text.len() as f64 / binary.len() as f64
    );
    let mut group = c.benchmark_group("cali_codec");
    group.throughput(Throughput::Bytes(text.len() as u64));
    group.bench_function("text_encode", |b| {
        b.iter(|| black_box(caliper_format::cali::to_bytes(black_box(&ds))))
    });
    group.bench_function("text_decode", |b| {
        b.iter(|| black_box(caliper_format::cali::from_bytes(black_box(&text)).unwrap()))
    });
    group.throughput(Throughput::Bytes(binary.len() as u64));
    group.bench_function("binary_encode", |b| {
        b.iter(|| black_box(caliper_format::binary::to_binary(black_box(&ds))))
    });
    group.bench_function("binary_decode", |b| {
        b.iter(|| {
            black_box(caliper_format::binary::from_binary(black_box(&binary)).unwrap())
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_parser,
    bench_aggregate,
    bench_stream_vs_trace,
    bench_merge,
    bench_cali_codec
);
criterion_main!(benches);
