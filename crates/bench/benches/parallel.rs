//! Criterion benchmarks: the thread-parallel sharded query engine.
//!
//! Groups:
//! * `parallel_query` — end-to-end `AGGREGATE ... GROUP BY` over a
//!   multi-file ParaDiS workload at 1/2/4/8 worker shards, against the
//!   serial streaming fold as the baseline. The acceptance bar is a
//!   ≥1.5× speedup at 4 shards over 1 shard.
//! * `shard_merge` — the root's ordered merge of per-unit partials, the
//!   only serial section of the parallel phase.

use std::path::PathBuf;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use caliper_query::{parallel_query_files, ParallelOptions};
use miniapps::paradis::{self, ParaDisParams};

const QUERY: &str = "AGGREGATE count, sum(sum#time.duration), min(sum#time.duration), \
                     max(sum#time.duration) GROUP BY kernel ORDER BY kernel";

/// Writes a `ranks`-file ParaDiS workload (each file several thousand
/// snapshot records) and returns the paths plus total record count.
fn workload(ranks: usize) -> (PathBuf, Vec<PathBuf>, u64) {
    let dir = std::env::temp_dir().join(format!("caliper-bench-parallel-{}", std::process::id()));
    let params = ParaDisParams {
        iterations: 40,
        ..Default::default()
    };
    let paths = paradis::write_files(&params, ranks, &dir).unwrap();
    let records = paths
        .iter()
        .map(|p| caliper_format::read_path(p).unwrap().len() as u64)
        .sum();
    (dir, paths, records)
}

fn bench_parallel_query(c: &mut Criterion) {
    let (dir, paths, records) = workload(16);
    let mut group = c.benchmark_group("parallel_query");
    group.throughput(Throughput::Elements(records));
    group.sample_size(10);

    group.bench_function(BenchmarkId::new("serial_stream", "baseline"), |b| {
        b.iter(|| cali_cli::query_files_streaming(black_box(QUERY), &paths).unwrap())
    });
    for threads in [1usize, 2, 4, 8] {
        let options = ParallelOptions::with_threads(threads);
        group.bench_function(BenchmarkId::new("shards", threads), |b| {
            b.iter(|| parallel_query_files(black_box(QUERY), &paths, &options).unwrap())
        });
    }
    group.finish();
    std::fs::remove_dir_all(&dir).ok();
}

fn bench_shard_merge(c: &mut Criterion) {
    let (dir, paths, _) = workload(8);
    let mut group = c.benchmark_group("shard_merge");
    // Tiny batches force many partials, isolating root-merge overhead.
    let options = ParallelOptions {
        threads: 4,
        batch_records: 64,
        ..Default::default()
    };
    group.bench_function(BenchmarkId::new("many_partials", "batch64"), |b| {
        b.iter(|| parallel_query_files(black_box(QUERY), &paths, &options).unwrap())
    });
    group.finish();
    std::fs::remove_dir_all(&dir).ok();
}

criterion_group!(benches, bench_parallel_query, bench_shard_merge);
criterion_main!(benches);
