//! Criterion micro-benchmarks: the on-line snapshot-processing hot path
//! and the design-choice ablations from DESIGN.md §4.
//!
//! Groups:
//! * `snapshot`      — cost of one begin/end pair under the different
//!   service configurations (baseline / trace / schemes A, B, C): the
//!   per-event cost behind Figure 3.
//! * `context_tree`  — blackboard compression ablation: context-tree
//!   node chain vs. copying flat attribute lists into each snapshot.
//! * `key_hash`      — FxHash vs. SipHash for aggregation-key lookups.
//! * `agg_concurrency` — per-thread aggregation DBs (lock-free design
//!   of §IV-B) vs. one mutex-protected shared DB.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use caliper_data::{fxhash, AttributeStore, ContextTree, FlatRecord, Value, ValueType, NODE_NONE};
use caliper_query::{parse_query, AggregationSpec, Aggregator};
use caliper_runtime::{Caliper, Clock, Config};

const SCHEME_A: &str = "function,annotation,kernel,amr.level,mpi.function,mpi.rank";
const SCHEME_B: &str = "kernel,mpi.function";
const SCHEME_C: &str =
    "function,annotation,kernel,amr.level,iteration#mainloop,mpi.function,mpi.rank";
const OPS: &str = "count,sum(time.duration),min(time.duration),max(time.duration)";

/// One annotated begin/work/end cycle under a given configuration.
fn bench_snapshot_path(c: &mut Criterion) {
    let mut group = c.benchmark_group("snapshot");
    let configs = [
        ("baseline", Config::baseline()),
        ("trace", Config::event_trace()),
        ("scheme_A", Config::event_aggregate(SCHEME_A, OPS)),
        ("scheme_B", Config::event_aggregate(SCHEME_B, OPS)),
        ("scheme_C", Config::event_aggregate(SCHEME_C, OPS)),
    ];
    for (name, config) in configs {
        group.bench_function(BenchmarkId::new("begin_end", name), |b| {
            let caliper = Caliper::with_clock(config.clone(), Clock::virtual_clock());
            let kernel = caliper.region_attribute("kernel");
            let iter = caliper.attribute(
                "iteration#mainloop",
                ValueType::Int,
                caliper_data::Properties::AS_VALUE,
            );
            let mut scope = caliper.make_thread_scope();
            let mut i = 0i64;
            b.iter(|| {
                scope.begin(&iter, i % 100);
                scope.begin(&kernel, "calc-dt");
                scope.advance_time(1_000);
                scope.end(&kernel).unwrap();
                scope.end(&iter).unwrap();
                i += 1;
            });
        });
    }
    group.finish();
}

/// Ablation: compressed snapshots (context-tree node reference) vs.
/// expanding the whole attribute stack into every snapshot record.
fn bench_context_tree(c: &mut Criterion) {
    let mut group = c.benchmark_group("context_tree");
    let depth = 8usize;

    group.bench_function("compressed_node_ref", |b| {
        let tree = ContextTree::new();
        let mut node = NODE_NONE;
        for i in 0..depth {
            node = tree.get_child(node, 0, &Value::str(format!("f{i}")));
        }
        b.iter(|| {
            // Snapshot cost: one node reference copy.
            let mut rec = caliper_data::SnapshotRecord::new();
            rec.push_node(black_box(node));
            black_box(rec);
        });
    });

    group.bench_function("flat_copy", |b| {
        let values: Vec<Value> = (0..depth).map(|i| Value::str(format!("f{i}"))).collect();
        b.iter(|| {
            // Snapshot cost without compression: copy every level.
            let mut rec = FlatRecord::new();
            for v in &values {
                rec.push(0, v.clone());
            }
            black_box(rec);
        });
    });

    group.bench_function("get_child_hot", |b| {
        let tree = ContextTree::new();
        let parent = tree.get_child(NODE_NONE, 0, &Value::str("main"));
        let value = Value::str("calc-dt");
        b.iter(|| black_box(tree.get_child(black_box(parent), 0, &value)));
    });
    group.finish();
}

/// Ablation: FxHash (in-repo) vs. SipHash (std default) over aggregation
/// keys.
fn bench_key_hash(c: &mut Criterion) {
    let mut group = c.benchmark_group("key_hash");
    let key: Vec<Option<Value>> = vec![
        Some(Value::str("main/hydro_cycle")),
        Some(Value::str("calc-dt")),
        Some(Value::Int(2)),
        Some(Value::Int(57)),
        None,
        Some(Value::Int(11)),
    ];
    group.bench_function("fxhash", |b| {
        b.iter(|| black_box(fxhash(black_box(&key))));
    });
    group.bench_function("siphash", |b| {
        use std::hash::{BuildHasher, RandomState};
        let s = RandomState::new();
        b.iter(|| black_box(s.hash_one(black_box(&key))));
    });
    group.finish();
}

fn sample_records(store: &Arc<AttributeStore>, n: usize) -> Vec<FlatRecord> {
    let kernel = store.create_simple("kernel", ValueType::Str);
    let rank = store.create_simple("mpi.rank", ValueType::Int);
    let dur = store.create_simple("time.duration", ValueType::Float);
    let kernels = ["calc-dt", "pdv", "advec-cell", "advec-mom"];
    (0..n)
        .map(|i| {
            let mut rec = FlatRecord::new();
            rec.push(kernel.id(), Value::str(kernels[i % kernels.len()]));
            rec.push(rank.id(), Value::Int((i % 8) as i64));
            rec.push(dur.id(), Value::Float(i as f64));
            rec
        })
        .collect()
}

/// Ablation: per-thread aggregation databases (the paper's lock-free
/// design) vs. a shared DB behind a mutex, 4 threads feeding records.
fn bench_agg_concurrency(c: &mut Criterion) {
    let mut group = c.benchmark_group("agg_concurrency");
    group.sample_size(10);
    let store = Arc::new(AttributeStore::new());
    let records = Arc::new(sample_records(&store, 4096));
    let spec = AggregationSpec::from_query(
        &parse_query("AGGREGATE count, sum(time.duration) GROUP BY kernel, mpi.rank").unwrap(),
    );
    const THREADS: usize = 4;

    group.bench_function("per_thread_dbs", |b| {
        b.iter(|| {
            let handles: Vec<_> = (0..THREADS)
                .map(|_| {
                    let store = Arc::clone(&store);
                    let records = Arc::clone(&records);
                    let spec = spec.clone();
                    std::thread::spawn(move || {
                        let mut agg = Aggregator::new(spec, store);
                        for rec in records.iter() {
                            agg.add(rec);
                        }
                        agg.len()
                    })
                })
                .collect();
            let total: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
            black_box(total)
        });
    });

    group.bench_function("shared_locked_db", |b| {
        b.iter(|| {
            let shared = Arc::new(parking_lot::Mutex::new(Aggregator::new(
                spec.clone(),
                Arc::clone(&store),
            )));
            let handles: Vec<_> = (0..THREADS)
                .map(|_| {
                    let shared = Arc::clone(&shared);
                    let records = Arc::clone(&records);
                    std::thread::spawn(move || {
                        for rec in records.iter() {
                            shared.lock().add(rec);
                        }
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            let len = shared.lock().len();
            black_box(len)
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_snapshot_path,
    bench_context_tree,
    bench_key_hash,
    bench_agg_concurrency
);
criterion_main!(benches);
