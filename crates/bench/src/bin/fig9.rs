//! Figure 9: runtime spent on different mesh refinement levels in
//! CleverLeaf per MPI rank (§VI-E).
//!
//! Off-line query, verbatim from the paper:
//!
//! ```text
//! AGGREGATE sum(time.duration)
//! WHERE not(mpi.function)
//! GROUP BY amr.level, mpi.rank
//! ```
//!
//! Usage: `fig9 [--quick]`

use caliper_bench::{merge_datasets, schemes};
use caliper_query::run_query;
use caliper_runtime::Config;
use miniapps::{CleverLeaf, CleverLeafParams};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let params = if quick {
        CleverLeafParams {
            timesteps: 20,
            ranks: 10,
            ..CleverLeafParams::case_study()
        }
    } else {
        CleverLeafParams::case_study()
    };
    eprintln!(
        "# Figure 9 reproduction: time per AMR level per rank, {} ranks",
        params.ranks
    );
    let app = CleverLeaf::new(params.clone());

    let config = Config::event_aggregate(schemes::C, "count,sum(time.duration)");
    let datasets = app.run_all(&config);
    let merged = merge_datasets(&datasets);

    let result = run_query(
        &merged,
        "AGGREGATE sum(sum#time.duration) \
         WHERE not(mpi.function), amr.level \
         GROUP BY amr.level, mpi.rank",
    )
    .expect("figure 9 query");

    let level = result.store.find("amr.level").unwrap();
    let rank = result.store.find("mpi.rank").unwrap();
    let time = result.store.find("sum#sum#time.duration").unwrap();

    // table[rank][level] = seconds
    let mut table = vec![vec![0.0f64; params.levels]; params.ranks];
    for rec in &result.records {
        let (Some(l), Some(r), Some(v)) = (
            rec.get(level.id()).and_then(|v| v.to_i64()),
            rec.get(rank.id()).and_then(|v| v.to_i64()),
            rec.get(time.id()).and_then(|v| v.to_f64()),
        ) else {
            continue;
        };
        if (r as usize) < table.len() && (l as usize) < params.levels {
            table[r as usize][l as usize] += v / 1e6;
        }
    }

    println!("rank,level0_s,level1_s,level2_s");
    for (r, levels) in table.iter().enumerate() {
        println!(
            "{r},{:.4},{:.4},{:.4}",
            levels[0],
            levels.get(1).copied().unwrap_or(0.0),
            levels.get(2).copied().unwrap_or(0.0)
        );
    }

    eprintln!();
    eprintln!("# Shape checks vs. the paper (Figure 9):");
    // Typical rank: level-0 >= level-1.
    let typical = table
        .iter()
        .enumerate()
        .filter(|(r, _)| *r != 7 && *r != 8)
        .filter(|(_, l)| l[0] >= l[1])
        .count();
    eprintln!(
        "#   proportions similar on most ranks (level0 >= level1 on {typical}/{} ordinary ranks)",
        params.ranks - 2
    );
    if params.ranks > 8 {
        eprintln!(
            "#   rank 8 spends more time in level 1 than 0: {} ({:.3} vs {:.3} s)",
            table[8][1] > table[8][0],
            table[8][1],
            table[8][0]
        );
        let others_l0: f64 = table
            .iter()
            .enumerate()
            .filter(|(r, _)| *r != 7)
            .map(|(_, l)| l[0])
            .sum::<f64>()
            / (params.ranks - 1) as f64;
        eprintln!(
            "#   rank 7 spends less time in level 0 than most ranks: {} ({:.3} vs avg {:.3} s)",
            table[7][0] < 0.95 * others_l0,
            table[7][0],
            others_l0
        );
    }
}
