//! Crash-recovery demo: the CleverLeaf workload with write-ahead
//! snapshot journaling enabled.
//!
//! Runs one rank of the instrumented CleverLeaf model on a virtual
//! clock and journals every event snapshot to `--journal PATH`. With
//! `--pace SCALE` the run additionally sleeps `SCALE` × the modelled
//! nanoseconds per work item, stretching the run across real time
//! *without changing a byte of the collected data* — so a `kill -9`
//! mid-run leaves a journal that is an exact prefix of an unpaced
//! clean run's. `scripts/check.sh` uses this for its crash-recovery
//! smoke test:
//!
//! ```text
//! journal_demo --journal clean.cali                  # full run
//! journal_demo --journal torn.cali --pace 2e-4 &     # paced run
//! sleep 2; kill -9 $!                                # die mid-run
//! cali-recover -o recovered.cali torn.cali           # salvage
//! ```
//!
//! Usage: `journal_demo --journal PATH [--timesteps N]
//! [--flush-interval N] [--fsync] [--append] [--pace SCALE]`

use std::process::ExitCode;

use caliper_runtime::{Caliper, Clock, Config};
use miniapps::cleverleaf::{CleverLeaf, WorkMode};
use miniapps::model::CleverLeafParams;

fn fail(message: impl std::fmt::Display) -> ExitCode {
    eprintln!("journal_demo: {message}");
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let mut journal: Option<String> = None;
    let mut timesteps: u64 = 40;
    let mut flush_interval: u64 = 1;
    let mut fsync = false;
    let mut append = false;
    let mut pace: f64 = 0.0;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value_of = |flag: &str| {
            args.next()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match arg.as_str() {
            "--journal" => match value_of("--journal") {
                Ok(v) => journal = Some(v),
                Err(e) => return fail(e),
            },
            "--timesteps" => match value_of("--timesteps").map(|v| v.parse()) {
                Ok(Ok(v)) => timesteps = v,
                _ => return fail("--timesteps needs an unsigned integer"),
            },
            "--flush-interval" => match value_of("--flush-interval").map(|v| v.parse()) {
                Ok(Ok(v)) => flush_interval = v,
                _ => return fail("--flush-interval needs an unsigned integer"),
            },
            "--pace" => match value_of("--pace").map(|v| v.parse()) {
                Ok(Ok(v)) => pace = v,
                _ => return fail("--pace needs a float scale factor"),
            },
            "--fsync" => fsync = true,
            "--append" => append = true,
            other => return fail(format!("unknown argument '{other}'")),
        }
    }
    let Some(journal) = journal else {
        return fail("--journal PATH is required");
    };

    let config = Config::new()
        .set("services", "event,timer")
        .set("journal.enable", "true")
        .set("journal.path", &journal)
        .set("journal.flush_interval", &flush_interval.to_string())
        .set("journal.fsync", if fsync { "true" } else { "false" })
        .set("journal.append", if append { "true" } else { "false" });
    let caliper = match Caliper::try_with_clock(config, Clock::virtual_clock()) {
        Ok(caliper) => caliper,
        Err(e) => return fail(e),
    };

    let app = CleverLeaf::new(CleverLeafParams {
        timesteps: timesteps as usize,
        ranks: 1,
        ..CleverLeafParams::default()
    });
    let mode = if pace > 0.0 {
        WorkMode::Paced { scale: pace }
    } else {
        WorkMode::Virtual
    };
    app.run_rank(0, &caliper, mode);

    caliper.take_dataset(); // flushes the journal
    if let Some(sink) = caliper.default_channel().journal() {
        let stats = sink.stats();
        eprintln!(
            "journal_demo: {} snapshots journaled to {} ({} flushes, {} forced, {} syncs)",
            stats.durable,
            journal,
            stats.flushes,
            stats.forced_flushes,
            stats.syncs
        );
        if stats.disabled {
            return fail("journaling was disabled by a write error");
        }
    }
    ExitCode::SUCCESS
}
