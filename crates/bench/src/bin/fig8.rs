//! Figure 8: runtime spent on different mesh refinement levels in
//! CleverLeaf per timestep (§VI-E).
//!
//! The paper's distinctive experiment: the on-line profile includes
//! *all* annotation attributes in the aggregation key (scheme C),
//! including the application-specific AMR level; the off-line query is
//! then, verbatim:
//!
//! ```text
//! AGGREGATE sum(time.duration)
//! WHERE not(mpi.function)
//! GROUP BY amr.level, iteration#mainloop
//! ```
//!
//! Usage: `fig8 [--quick]`

use caliper_bench::{merge_datasets, schemes};
use caliper_query::run_query;
use caliper_runtime::Config;
use miniapps::{CleverLeaf, CleverLeafParams};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let params = if quick {
        CleverLeafParams {
            timesteps: 20,
            ranks: 4,
            ..CleverLeafParams::case_study()
        }
    } else {
        CleverLeafParams::case_study()
    };
    let timesteps = params.timesteps;
    eprintln!(
        "# Figure 8 reproduction: time per AMR level per timestep, {} ranks, {} timesteps",
        params.ranks, timesteps
    );
    let app = CleverLeaf::new(params.clone());

    // On-line: the full scheme-C profile of §VI-E.
    let config = Config::event_aggregate(schemes::C, "count,sum(time.duration)");
    let datasets = app.run_all(&config);
    eprintln!(
        "# per-process profile records: {} (paper: 257592)",
        datasets[0].len()
    );
    let merged = merge_datasets(&datasets);

    // Off-line: the paper's query (aggregating the pre-aggregated
    // sum#time.duration from the on-line stage).
    let result = run_query(
        &merged,
        "AGGREGATE sum(sum#time.duration) \
         WHERE not(mpi.function), amr.level \
         GROUP BY amr.level, iteration#mainloop",
    )
    .expect("figure 8 query");

    let level = result.store.find("amr.level").unwrap();
    let iter = result.store.find("iteration#mainloop").unwrap();
    let time = result.store.find("sum#sum#time.duration").unwrap();

    // series[level][timestep] = seconds
    let mut series = vec![vec![0.0f64; timesteps]; params.levels];
    for rec in &result.records {
        let (Some(l), Some(t), Some(v)) = (
            rec.get(level.id()).and_then(|v| v.to_i64()),
            rec.get(iter.id()).and_then(|v| v.to_i64()),
            rec.get(time.id()).and_then(|v| v.to_f64()),
        ) else {
            continue;
        };
        if (l as usize) < series.len() && (t as usize) < timesteps {
            series[l as usize][t as usize] += v / 1e6;
        }
    }

    println!("timestep,level0_s,level1_s,level2_s");
    for t in 0..timesteps {
        println!(
            "{t},{:.4},{:.4},{:.4}",
            series[0][t],
            series.get(1).map(|s| s[t]).unwrap_or(0.0),
            series.get(2).map(|s| s[t]).unwrap_or(0.0)
        );
    }

    eprintln!();
    eprintln!("# Shape checks vs. the paper (Figure 8):");
    let first = |l: usize| series[l][..timesteps / 10].iter().sum::<f64>();
    let last = |l: usize| series[l][timesteps - timesteps / 10..].iter().sum::<f64>();
    eprintln!(
        "#   level 0 roughly constant: first decile {:.3} s vs last {:.3} s (ratio {:.2})",
        first(0),
        last(0),
        last(0) / first(0)
    );
    eprintln!(
        "#   level 1 increases slightly: ratio {:.2}",
        last(1) / first(1)
    );
    eprintln!(
        "#   level 2 increases significantly: ratio {:.2}",
        last(2) / first(2)
    );
}
