//! Figure 7: time distribution for computational kernels and MPI
//! functions across MPI ranks (§VI-D).
//!
//! The paper's scheme, verbatim:
//! `AGGREGATE time.duration GROUP BY kernel, mpi.function, mpi.rank` —
//! including the rank in the aggregation key exposes load (im)balance.
//! The figure shows the distribution (across ranks) of: total
//! computation time, total MPI time, the top two MPI functions, and
//! the top two computational kernels.
//!
//! Usage: `fig7 [--quick]`

use caliper_bench::{five_num, merge_datasets};
use caliper_query::run_query;
use caliper_runtime::Config;
use miniapps::{CleverLeaf, CleverLeafParams};

fn per_rank_values(
    merged: &caliper_format::Dataset,
    query: &str,
    value_col: &str,
) -> Vec<(i64, f64)> {
    let result = run_query(merged, query).expect("figure 7 query");
    let rank = result.store.find("mpi.rank").expect("mpi.rank column");
    let value = result.store.find(value_col).expect("value column");
    result
        .records
        .iter()
        .filter_map(|r| {
            Some((
                r.get(rank.id())?.to_i64()?,
                r.get(value.id())?.to_f64()? / 1e6, // seconds
            ))
        })
        .collect()
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let params = if quick {
        CleverLeafParams {
            timesteps: 20,
            ranks: 6,
            ..CleverLeafParams::case_study()
        }
    } else {
        CleverLeafParams::case_study()
    };
    eprintln!(
        "# Figure 7 reproduction: per-rank time distributions, {} ranks",
        params.ranks
    );
    let app = CleverLeaf::new(params);

    // On-line: the paper's §VI-D aggregation scheme.
    let config = Config::event_aggregate("kernel,mpi.function,mpi.rank", "sum(time.duration)");
    let datasets = app.run_all(&config);
    let merged = merge_datasets(&datasets);

    // Category -> per-rank totals (seconds).
    let mut categories: Vec<(String, Vec<(i64, f64)>)> = Vec::new();
    categories.push((
        "computation (total)".into(),
        per_rank_values(
            &merged,
            "AGGREGATE sum(sum#time.duration) WHERE not(mpi.function) GROUP BY mpi.rank",
            "sum#sum#time.duration",
        ),
    ));
    categories.push((
        "MPI (total)".into(),
        per_rank_values(
            &merged,
            "AGGREGATE sum(sum#time.duration) WHERE mpi.function GROUP BY mpi.rank",
            "sum#sum#time.duration",
        ),
    ));

    // Top two MPI functions and kernels by global time.
    let top = |filter_col: &str| -> Vec<String> {
        let result = run_query(
            &merged,
            &format!(
                "AGGREGATE sum(sum#time.duration) WHERE {filter_col} GROUP BY {filter_col} \
                 ORDER BY sum#sum#time.duration desc"
            ),
        )
        .expect("top query");
        let col = result.store.find(filter_col).unwrap();
        result
            .records
            .iter()
            .take(2)
            .filter_map(|r| Some(r.get(col.id())?.to_string()))
            .collect()
    };
    for name in top("mpi.function") {
        let rows = per_rank_values(
            &merged,
            &format!(
                "AGGREGATE sum(sum#time.duration) WHERE mpi.function={name} GROUP BY mpi.rank"
            ),
            "sum#sum#time.duration",
        );
        categories.push((name, rows));
    }
    for name in top("kernel") {
        let rows = per_rank_values(
            &merged,
            &format!("AGGREGATE sum(sum#time.duration) WHERE kernel={name} GROUP BY mpi.rank"),
            "sum#sum#time.duration",
        );
        categories.push((name, rows));
    }

    println!("category,min_s,q1_s,median_s,q3_s,max_s,imbalance_pct");
    eprintln!();
    for (name, rows) in &categories {
        let values: Vec<f64> = rows.iter().map(|(_, v)| *v).collect();
        let f = five_num(&values);
        let imbalance = if f.median > 0.0 {
            100.0 * (f.max - f.min) / f.median
        } else {
            0.0
        };
        println!(
            "{name},{:.4},{:.4},{:.4},{:.4},{:.4},{:.1}",
            f.min, f.q1, f.median, f.q3, f.max, imbalance
        );
        eprintln!(
            "# {name:<22} min {:.3} q1 {:.3} med {:.3} q3 {:.3} max {:.3}  spread {:.1}%",
            f.min, f.q1, f.median, f.q3, f.max, imbalance
        );
    }

    eprintln!();
    eprintln!("# Shape checks vs. the paper (Figure 7):");
    let spread = |name: &str| -> f64 {
        let rows = &categories.iter().find(|(n, _)| n == name).unwrap().1;
        let values: Vec<f64> = rows.iter().map(|(_, v)| *v).collect();
        let f = five_num(&values);
        f.max - f.min
    };
    let comp = spread("computation (total)");
    let mpi = spread("MPI (total)");
    eprintln!("#   small but present computation imbalance, mirrored in MPI time:");
    eprintln!("#     computation spread {comp:.3} s, MPI spread {mpi:.3} s");
    let kernel_names: Vec<&String> = categories.iter().skip(4).map(|(n, _)| n).collect();
    if kernel_names.len() == 2 {
        let top2: f64 = kernel_names.iter().map(|n| spread(n)).sum();
        eprintln!(
            "#   top-2 kernel imbalance ({} + {}) accounts for {:.0}% of total computation imbalance",
            kernel_names[0],
            kernel_names[1],
            100.0 * top2 / comp
        );
        eprintln!("#   (paper: less than half, pointing at imbalance elsewhere)");
    }
}
