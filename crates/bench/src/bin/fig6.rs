//! Figure 6: MPI function profile of CleverLeaf (§VI-C).
//!
//! The paper's scheme, verbatim: intercept MPI calls and aggregate
//! `AGGREGATE count, time.duration GROUP BY mpi.function` on-line, then
//! sum across processes off-line and report the top 10 MPI functions by
//! accumulated CPU time.
//!
//! Usage: `fig6 [--quick]`

use caliper_bench::{bar_chart, merge_datasets, result_pairs};
use caliper_query::run_query;
use caliper_runtime::Config;
use miniapps::{CleverLeaf, CleverLeafParams};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let params = if quick {
        CleverLeafParams {
            timesteps: 20,
            ranks: 4,
            ..CleverLeafParams::case_study()
        }
    } else {
        CleverLeafParams::case_study()
    };
    eprintln!(
        "# Figure 6 reproduction: CleverLeaf, {} ranks, MPI interception via the wrapper hooks",
        params.ranks
    );
    let app = CleverLeaf::new(params);

    let config =
        Config::event_aggregate("mpi.function", "count,sum(time.duration)");
    let datasets = app.run_all(&config);
    let merged = merge_datasets(&datasets);
    let result = run_query(
        &merged,
        "AGGREGATE sum(sum#time.duration), sum(aggregate.count) \
         WHERE mpi.function \
         GROUP BY mpi.function \
         ORDER BY sum#sum#time.duration desc",
    )
    .expect("figure 6 query");

    let time_rows = result_pairs(&result, "mpi.function", "sum#sum#time.duration");
    let count_rows = result_pairs(&result, "mpi.function", "sum#aggregate.count");

    println!("mpi_function,total_time_us,calls");
    for ((name, time_us), (_, calls)) in time_rows.iter().zip(&count_rows).take(10) {
        println!("{name},{time_us:.1},{calls}");
    }

    eprintln!();
    let top10: Vec<(String, f64)> = time_rows
        .iter()
        .take(10)
        .map(|(n, v)| (n.clone(), v / 1e6))
        .collect();
    eprint!("{}", bar_chart(&top10, 50));
    eprintln!("# (bars in seconds of accumulated CPU time)");
    eprintln!();
    eprintln!("# Shape checks vs. the paper (Figure 6):");
    eprintln!(
        "#   top function is MPI_Barrier: {}",
        time_rows.first().map(|(n, _)| n.as_str()) == Some("MPI_Barrier")
    );
    eprintln!(
        "#   second is MPI_Allreduce: {}",
        time_rows.get(1).map(|(n, _)| n.as_str()) == Some("MPI_Allreduce")
    );
    let barrier = time_rows.first().map(|(_, v)| *v).unwrap_or(0.0);
    let p2p: f64 = time_rows
        .iter()
        .filter(|(n, _)| n == "MPI_Isend" || n == "MPI_Irecv" || n == "MPI_Waitall")
        .map(|(_, v)| v)
        .sum();
    eprintln!(
        "#   point-to-point time is comparatively small: {:.1}% of barrier time",
        100.0 * p2p / barrier
    );
}
