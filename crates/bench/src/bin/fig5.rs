//! Figure 5: profile of user-annotated computational kernels in
//! CleverLeaf (§VI-B).
//!
//! The paper's two-stage scheme, verbatim:
//!
//! * on-line, 100 Hz sampling: `AGGREGATE count GROUP BY kernel`
//! * off-line, across processes: `AGGREGATE sum(aggregate.count)
//!   GROUP BY kernel`
//!
//! CPU time is estimated from the sample counts (10 ms per sample).
//!
//! Usage: `fig5 [--quick]`

use caliper_bench::{bar_chart, merge_datasets, result_pairs};
use caliper_query::run_query;
use caliper_runtime::Config;
use miniapps::{CleverLeaf, CleverLeafParams};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let params = if quick {
        CleverLeafParams {
            timesteps: 20,
            ranks: 4,
            ..CleverLeafParams::case_study()
        }
    } else {
        CleverLeafParams::case_study()
    };
    eprintln!(
        "# Figure 5 reproduction: CleverLeaf triple point {}x{}, {} levels, {} ranks, 100 Hz sampling",
        params.coarse.0, params.coarse.1, params.levels, params.ranks
    );
    let app = CleverLeaf::new(params);

    // Stage 1: on-line sampled aggregation, per process.
    let config = Config::sampled_aggregate(10_000_000, "kernel", "count");
    let datasets = app.run_all(&config);

    // Stage 2: off-line cross-process aggregation.
    let merged = merge_datasets(&datasets);
    let result = run_query(
        &merged,
        "AGGREGATE sum(aggregate.count) GROUP BY kernel ORDER BY sum#aggregate.count desc",
    )
    .expect("figure 5 query");

    let mut rows = result_pairs(&result, "kernel", "sum#aggregate.count");
    // Samples outside any annotated kernel appear with an empty kernel
    // key; label them like the paper's figure does.
    for (label, _) in &mut rows {
        if label.is_empty() {
            *label = "(other/unannotated)".to_string();
        }
    }

    println!("kernel,samples,est_cpu_seconds");
    for (kernel, samples) in &rows {
        println!("{kernel},{samples},{:.2}", samples * 0.01);
    }

    eprintln!();
    eprint!("{}", bar_chart(&rows, 50));
    eprintln!();
    eprintln!("# Shape checks vs. the paper (Figure 5):");
    let get = |k: &str| rows.iter().find(|(n, _)| n == k).map(|(_, v)| *v).unwrap_or(0.0);
    let other = get("(other/unannotated)");
    let calc_dt = get("calc-dt");
    let rest: f64 = rows
        .iter()
        .filter(|(n, _)| n != "(other/unannotated)" && n != "calc-dt")
        .map(|(_, v)| v)
        .sum();
    eprintln!("#   most samples fall outside annotated kernels: other={other} vs all kernels={}", calc_dt + rest);
    eprintln!("#   calc-dt dominates the annotated kernels: {calc_dt} vs next {:.0}",
        rows.iter().filter(|(n, _)| n != "(other/unannotated)" && n != "calc-dt").map(|(_, v)| *v).fold(0.0, f64::max));
}
