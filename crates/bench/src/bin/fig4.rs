//! Figure 4: scalability of cross-process aggregation in the MPI-based
//! query application — total runtime (including I/O), reading and
//! processing process-local input, and tree-based cross-process
//! reduction, in a weak-scaling mode (one ParaDiS input file per query
//! process).
//!
//! The paper runs 1…4096 MPI processes on a cluster. On a laptop all
//! "ranks" share a few cores, so threaded wall-clock cannot show weak
//! scaling; instead this harness measures the *critical path* on an
//! uncontended core (see DESIGN.md §3):
//!
//! * local time  = time to read + aggregate one input file (constant
//!   per process under weak scaling, by construction);
//! * reduction   = sum over tree levels of the maximum merge time on
//!   that level (the binomial tree executed sequentially, each merge
//!   timed individually);
//! * total       = local max + reduction + root finish.
//!
//! The threaded `mpi-caliquery` engine is also run at each point to
//! verify that the parallel result equals the sequential one.
//!
//! With `--kill RANK`, the run finishes with a failure-injection
//! check: the same parallel query executed under a [`FaultPlan`] that
//! kills the given (non-root) rank at its first communication op. The
//! resilient tree reduction routes around the dead subtree; the harness
//! reports the reduction coverage (which ranks' contributions made it)
//! and verifies the merged result equals a serial aggregation over
//! exactly the surviving ranks' files.
//!
//! # Synthetic scale mode (`--ranks N`)
//!
//! With `--ranks N` the harness instead runs one fault-tolerant tree
//! reduction over N *simulated* ranks with synthetic per-rank payloads
//! (no input files — at 16 384 ranks, file I/O would dwarf the thing
//! being measured). The default `--engine event` is the deterministic
//! virtual-clock scheduler of `mpisim::sched`: everything written to
//! stdout — the merged value, the coverage, the event count, the
//! virtual-clock makespan — is byte-identical across runs and across
//! `--workers` values, which is exactly what `scripts/check.sh` pins.
//! Wall-clock time (machine-dependent) goes to stderr.
//!
//! Usage: `fig4 [--quick] [--max-np N] [--kill RANK]`
//!        `fig4 --ranks N [--engine event|threads] [--nodes N]
//!              [--workers W] [--kills K] [--kill-seed S]`

use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

use cali_cli::{parallel_query, parallel_query_resilient, read_files};
use caliper_query::{parse_query, run_query, Pipeline};
use miniapps::paradis::{self, ParaDisParams, EVALUATION_QUERY};
use mpisim::{
    EventEngine, Executor, FaultPlan, ReduceCoverage, ReduceTask, ResilienceOptions, ThreadEngine,
    Topology,
};

/// Run the fault-injected cross-process reduction at `np` ranks, report
/// coverage, and check the survivors-only equality.
fn failure_injection_check(paths: &[PathBuf], np: usize, victim: usize) {
    assert!(
        victim > 0 && victim < np,
        "--kill takes a non-root rank below np (got {victim}, np {np})"
    );
    eprintln!();
    eprintln!("# failure injection: killing rank {victim} at its first comm op, np = {np}");
    let per_rank: Vec<Vec<PathBuf>> = paths[..np].iter().map(|p| vec![p.clone()]).collect();
    let (result, report) = parallel_query_resilient(
        EVALUATION_QUERY,
        per_rank,
        FaultPlan::new().kill(victim, 0),
        ResilienceOptions::default(),
    )
    .expect("resilient parallel query");
    eprintln!(
        "# reduction coverage: {}/{} ranks included; lost subtree: {:?}",
        report.included.len(),
        np,
        report.lost
    );
    let survivor_paths: Vec<PathBuf> = report.included.iter().map(|&r| paths[r].clone()).collect();
    let ds = read_files(&survivor_paths).expect("read survivor files");
    let serial = run_query(&ds, EVALUATION_QUERY).expect("serial reference query");
    assert_eq!(
        serial.to_table().render(),
        result.to_table().render(),
        "resilient result must equal a serial aggregation over the surviving ranks"
    );
    eprintln!(
        "# resilient result matches the serial aggregation over survivors ({} output records)",
        result.records.len()
    );
}

/// Numeric flag value, e.g. `flag(&args, "--ranks")`.
fn flag<T: std::str::FromStr>(args: &[String], name: &str) -> Option<T> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
}

/// Render coverage deterministically: counts plus the full lost set
/// (compact enough even when a kill strands a large subtree).
fn coverage_line(c: &ReduceCoverage) -> String {
    let lost: Vec<String> = c.lost.iter().map(|r| r.to_string()).collect();
    format!(
        "included,{},lost,{},lost_ranks,[{}]",
        c.included.len(),
        c.lost.len(),
        lost.join(" ")
    )
}

/// The synthetic scale mode: one resilient tree reduction over `ranks`
/// simulated ranks, payload = rank index, merge = sum. Deterministic
/// results to stdout, wall-clock to stderr.
fn synthetic_scale_run(args: &[String], ranks: usize) {
    let engine_name = args
        .iter()
        .position(|a| a == "--engine")
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
        .unwrap_or("event");
    let nodes: usize = flag(args, "--nodes").unwrap_or(1);
    let workers: usize = flag(args, "--workers").unwrap_or(1);
    let kills: usize = flag(args, "--kills").unwrap_or(0);
    let seed: u64 = flag(args, "--kill-seed").unwrap_or(0x5EED);
    let topology = if nodes > 1 {
        Topology::two_level_for(ranks, nodes)
    } else {
        Topology::Flat
    };
    let plan = FaultPlan::seeded_kills(seed, kills, ranks);
    let opts = ResilienceOptions::default();
    let make = move |rank: usize, size: usize| {
        ReduceTask::new(rank, size, topology, move || rank as u64, |a, b| a + b, opts)
    };

    eprintln!(
        "# synthetic scale run: {ranks} ranks, engine {engine_name}, {nodes} node(s), \
         {workers} worker(s), {kills} seeded kill(s) (seed {seed:#x})"
    );
    let t = Instant::now();
    let (root, stats) = match engine_name {
        "event" => {
            let engine = EventEngine::with_workers(workers);
            let (mut outputs, stats) = engine.run_tasks_with_stats(ranks, plan, make);
            (outputs[0].take(), Some(stats))
        }
        "threads" => {
            assert!(
                ranks <= 512,
                "--engine threads spawns one OS thread per rank; use --engine event past 512"
            );
            let mut outputs = ThreadEngine.run_tasks(ranks, plan, make);
            (outputs[0].take(), None)
        }
        other => panic!("unknown --engine '{other}' (use 'event' or 'threads')"),
    };
    let wall = t.elapsed().as_secs_f64();

    let (sum, coverage) = root
        .expect("rank 0 is never a seeded victim")
        .expect("rank 0 is the reduction root");
    println!("engine,{engine_name},ranks,{ranks},nodes,{nodes},kills,{kills}");
    println!("sum,{sum}");
    println!("{}", coverage_line(&coverage));
    if let Some(stats) = stats {
        println!(
            "sched_events,{},virtual_time_ns,{}",
            stats.events, stats.virtual_time_ns
        );
    }
    eprintln!("# wall: {wall:.3} s");
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if let Some(ranks) = flag::<usize>(&args, "--ranks") {
        synthetic_scale_run(&args, ranks);
        return;
    }
    let quick = args.iter().any(|a| a == "--quick");
    let max_np: usize = args
        .iter()
        .position(|a| a == "--max-np")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(if quick { 16 } else { 256 });
    let kill: Option<usize> = args
        .iter()
        .position(|a| a == "--kill")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok());

    let dir = std::env::temp_dir().join(format!("caliper-fig4-{}", std::process::id()));
    let params = ParaDisParams::default();
    eprintln!("# Figure 4 reproduction: generating {max_np} ParaDiS input files under {dir:?}");
    let paths = paradis::write_files(&params, max_np, &dir).expect("write input files");
    eprintln!(
        "# each file: {} snapshot records (paper: 2174)",
        paradis::generate_rank(&params, 0).len()
    );
    let spec = parse_query(EVALUATION_QUERY).expect("query parses");

    println!("np,total_s,local_max_s,reduction_s,levels,output_records,threaded_wall_s");
    let mut np = 1;
    while np <= max_np {
        // --- local phase, per rank, uncontended ---
        let mut locals = Vec::with_capacity(np);
        let mut pipelines: Vec<Option<Pipeline>> = Vec::with_capacity(np);
        for path in &paths[..np] {
            let t = Instant::now();
            let ds = read_files(std::slice::from_ref(path)).expect("read input");
            let mut pipeline = Pipeline::new(spec.clone(), Arc::clone(&ds.store));
            pipeline.process_dataset(&ds);
            locals.push(t.elapsed().as_secs_f64());
            pipelines.push(Some(pipeline));
        }
        let local_max = locals.iter().copied().fold(0.0f64, f64::max);

        // --- binomial-tree reduction, executed sequentially, each
        //     merge timed; per-level critical path = max merge time ---
        let mut level_max = Vec::new();
        let mut step = 1usize;
        while step < np {
            let mut worst = 0.0f64;
            let mut i = 0;
            while i + step < np {
                let incoming = pipelines[i + step].take().expect("pipeline present");
                let mine = pipelines[i].as_mut().expect("receiver present");
                let t = Instant::now();
                mine.merge(incoming);
                worst = worst.max(t.elapsed().as_secs_f64());
                i += 2 * step;
            }
            level_max.push(worst);
            step *= 2;
        }
        let reduction: f64 = level_max.iter().sum();

        let t = Instant::now();
        let result = pipelines[0].take().expect("root pipeline").finish();
        let finish = t.elapsed().as_secs_f64();
        let total = local_max + reduction + finish;

        // --- cross-check with the threaded parallel engine ---
        let per_rank: Vec<Vec<PathBuf>> = paths[..np].iter().map(|p| vec![p.clone()]).collect();
        let t = Instant::now();
        let (threaded, _) = parallel_query(EVALUATION_QUERY, per_rank).expect("parallel query");
        let threaded_wall = t.elapsed().as_secs_f64();
        assert_eq!(
            result.to_table().render(),
            threaded.to_table().render(),
            "threaded and sequential reductions must agree at np={np}"
        );

        println!(
            "{np},{total:.6},{local_max:.6},{reduction:.6},{},{},{threaded_wall:.6}",
            level_max.len(),
            result.records.len()
        );
        eprintln!(
            "# np {np:>5}: total {total:.4} s = local {local_max:.4} + reduction {reduction:.5} ({} levels) + finish {finish:.5}; {} output records (paper: 85)",
            level_max.len(),
            result.records.len()
        );
        np *= 2;
    }

    if let Some(victim) = kill {
        failure_injection_check(&paths, max_np, victim);
    }

    std::fs::remove_dir_all(&dir).ok();
    eprintln!();
    eprintln!("# Expected shape (paper §V-C): local input time roughly constant");
    eprintln!("# (weak scaling), reduction time growing logarithmically with np,");
    eprintln!("# total dominated by local processing + I/O.");
}
