//! Figure 3: on-line aggregation overheads with different aggregation
//! schemes in sampled and event-based collection modes, compared to
//! tracing and a baseline without data collection.
//!
//! The paper measures wall-clock runtime of the instrumented CleverLeaf
//! (100 timesteps, 36 ranks, 5 runs per configuration). Here the ranks
//! run sequentially with *real* spinning work (scaled down), so the
//! measured per-snapshot processing overheads are genuine wall-clock
//! costs — only the compute they perturb is scaled.
//!
//! Usage: `fig3 [--quick] [--runs N] [--scale F]`

use caliper_bench::{median, schemes, stats};
use caliper_runtime::Config;
use miniapps::{CleverLeaf, CleverLeafParams};

struct Row {
    name: &'static str,
    seconds: Vec<f64>,
    snapshots: u64,
    outputs: usize,
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let get = |flag: &str, default: f64| -> f64 {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    };
    let runs = get("--runs", if quick { 2.0 } else { 5.0 }) as usize;
    // The scale factor trades run length against overhead resolution:
    // larger scale = more real compute per snapshot = smaller (more
    // paper-like) overhead percentages. The default keeps a full fig3
    // run around 2-3 minutes on one core; pass `--scale 0.1` for
    // overhead percentages directly comparable to the paper's ~1-3%.
    let scale = get("--scale", if quick { 0.02 } else { 0.05 });
    let params = CleverLeafParams {
        timesteps: if quick { 10 } else { 25 },
        ranks: 4, // sequential on one core; the paper used 36 in parallel
        ..CleverLeafParams::overhead_study()
    };
    eprintln!(
        "# Figure 3 reproduction: {} timesteps, {} sequential ranks, work scale {scale}, {runs} runs",
        params.timesteps, params.ranks
    );
    let app = CleverLeaf::new(params.clone());

    let sample_ns = 10_000_000;
    let configs: Vec<(&'static str, Config)> = vec![
        ("baseline", Config::baseline()),
        ("trace (sample)", Config::sampled_trace(sample_ns)),
        (
            "scheme A (sample)",
            Config::sampled_aggregate(sample_ns, schemes::A, schemes::OPS),
        ),
        (
            "scheme B (sample)",
            Config::sampled_aggregate(sample_ns, schemes::B, schemes::OPS),
        ),
        (
            "scheme C (sample)",
            Config::sampled_aggregate(sample_ns, schemes::C, schemes::OPS),
        ),
        ("trace (event)", Config::event_trace()),
        (
            "scheme A (event)",
            Config::event_aggregate(schemes::A, schemes::OPS),
        ),
        (
            "scheme B (event)",
            Config::event_aggregate(schemes::B, schemes::OPS),
        ),
        (
            "scheme C (event)",
            Config::event_aggregate(schemes::C, schemes::OPS),
        ),
    ];

    let mut rows: Vec<Row> = configs
        .iter()
        .map(|(name, _)| Row {
            name,
            seconds: Vec::new(),
            snapshots: 0,
            outputs: 0,
        })
        .collect();
    // Interleave configurations round-robin (one full round per run) so
    // slow machine drift — CPU frequency, noisy neighbours — affects
    // every configuration equally rather than biasing whichever config
    // happened to run during a calm window. The first round is a
    // discarded warmup.
    for round in 0..=runs {
        let warmup = round == 0;
        for (i, (name, config)) in configs.iter().enumerate() {
            let mut total = 0.0;
            let mut snaps = 0;
            let mut outs = 0;
            // Run all ranks back to back, like one node-filling job.
            for rank in 0..app.params.ranks {
                let (ds, secs, s) = app.run_rank_timed(rank, config, scale);
                total += secs;
                snaps += s;
                outs += ds.len();
            }
            if warmup {
                eprintln!("# warmup {name:<18} {total:.3} s");
            } else {
                rows[i].seconds.push(total);
                rows[i].snapshots = snaps / app.params.ranks as u64;
                rows[i].outputs = outs / app.params.ranks;
            }
        }
    }
    for row in &rows {
        let s = stats(&row.seconds);
        eprintln!(
            "# {:<18} median {:.3} s  (min {:.3}, max {:.3})  snapshots/proc {}  outputs/proc {}",
            row.name,
            median(&row.seconds),
            s.min,
            s.max,
            row.snapshots,
            row.outputs
        );
    }

    let baseline = median(&rows[0].seconds);
    println!("config,median_s,min_s,max_s,overhead_pct,snapshots_per_proc,outputs_per_proc");
    for row in &rows {
        let s = stats(&row.seconds);
        let med = median(&row.seconds);
        let overhead = 100.0 * (med - baseline) / baseline;
        println!(
            "{},{med:.6},{:.6},{:.6},{overhead:.2},{},{}",
            row.name, s.min, s.max, row.snapshots, row.outputs
        );
    }

    eprintln!();
    eprintln!("# Shape checks vs. the paper (§V-B):");
    let med = |n: &str| median(&rows.iter().find(|r| r.name == n).unwrap().seconds);
    let ov = |n: &str| 100.0 * (med(n) - baseline) / baseline;
    eprintln!(
        "#   sampling overhead is small: trace {:.2}%, scheme A {:.2}% (paper: ~0.85%)",
        ov("trace (sample)"),
        ov("scheme A (sample)")
    );
    eprintln!(
        "#   event overheads exceed sampling: scheme A {:.2}% vs {:.2}% (paper: 2-3.3% vs ~0.85%)",
        ov("scheme A (event)"),
        ov("scheme A (sample)")
    );
    eprintln!(
        "#   event trace is cheaper than event aggregation: {:.2}% vs A {:.2}% / B {:.2}% (paper: tracing slightly lower)",
        ov("trace (event)"),
        ov("scheme A (event)"),
        ov("scheme B (event)")
    );
    eprintln!(
        "#   scheme C is the most expensive aggregation: {:.2}% (paper: noticeably higher than A/B)",
        ov("scheme C (event)")
    );
}
