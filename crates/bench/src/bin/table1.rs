//! Table I: number of snapshots and output records (aggregation
//! results) per process, for tracing and aggregation schemes A/B/C in
//! sampled and event-triggered collection modes.
//!
//! Paper setup (§V-B): instrumented CleverLeaf, 100 timesteps, 36 MPI
//! ranks, 7 attributes; sampling period 10 ms.
//!
//! Usage: `table1 [--quick]`

use caliper_bench::schemes;
use caliper_runtime::Config;
use miniapps::{CleverLeaf, CleverLeafParams};

fn run_config(app: &CleverLeaf, name: &str, config: &Config) -> (String, u64, usize) {
    // Per-process numbers: all ranks behave alike up to imbalance noise,
    // so report rank 0 (the paper reports one number per process, too).
    let caliper = caliper_runtime::Caliper::with_clock(
        config.clone(),
        caliper_runtime::Clock::virtual_clock(),
    );
    app.run_rank(0, &caliper, miniapps::WorkMode::Virtual);
    let snapshots = caliper.total_snapshots();
    let outputs = caliper.take_dataset().len();
    (name.to_string(), snapshots, outputs)
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let params = if quick {
        CleverLeafParams {
            timesteps: 20,
            ranks: 8,
            ..CleverLeafParams::overhead_study()
        }
    } else {
        CleverLeafParams::overhead_study()
    };
    eprintln!(
        "# Table I reproduction: CleverLeaf {} timesteps, {} ranks, 10 ms sampling",
        params.timesteps, params.ranks
    );
    let app = CleverLeaf::new(params);

    let sample_ns = 10_000_000; // 10 ms, as in the paper
    let rows = [
        (
            "Trace (sample)",
            Config::sampled_trace(sample_ns),
        ),
        (
            "Scheme A (sample)",
            Config::sampled_aggregate(sample_ns, schemes::A, schemes::OPS),
        ),
        (
            "Scheme B (sample)",
            Config::sampled_aggregate(sample_ns, schemes::B, schemes::OPS),
        ),
        (
            "Scheme C (sample)",
            Config::sampled_aggregate(sample_ns, schemes::C, schemes::OPS),
        ),
        ("Trace (event)", Config::event_trace()),
        (
            "Scheme A (event)",
            Config::event_aggregate(schemes::A, schemes::OPS),
        ),
        (
            "Scheme B (event)",
            Config::event_aggregate(schemes::B, schemes::OPS),
        ),
        (
            "Scheme C (event)",
            Config::event_aggregate(schemes::C, schemes::OPS),
        ),
    ];

    println!("config,snapshots,output_records");
    let mut results = Vec::new();
    for (name, config) in rows {
        let row = run_config(&app, name, &config);
        println!("{},{},{}", row.0, row.1, row.2);
        results.push(row);
    }

    eprintln!();
    eprintln!("# {:<20} {:>10} {:>15}", "Config", "Snapshots", "Output records");
    for (name, snapshots, outputs) in &results {
        eprintln!("# {name:<20} {snapshots:>10} {outputs:>15}");
    }
    eprintln!();
    eprintln!("# Shape checks vs. the paper:");
    let get = |n: &str| results.iter().find(|(name, _, _)| name == n).unwrap();
    let trace_ev = get("Trace (event)");
    let a_ev = get("Scheme A (event)");
    let b_ev = get("Scheme B (event)");
    let c_ev = get("Scheme C (event)");
    eprintln!(
        "#   trace output == snapshots: {} (paper: 219382 == 219382)",
        trace_ev.1 == trace_ev.2 as u64
    );
    eprintln!(
        "#   scheme A >> scheme B outputs: {} vs {} (paper: 266 vs 26)",
        a_ev.2, b_ev.2
    );
    eprintln!(
        "#   scheme C >> scheme A outputs: {} vs {} (paper: 6749 vs 266)",
        c_ev.2, a_ev.2
    );
    eprintln!(
        "#   scheme C profile is {:.1}x smaller than the event trace (paper: 32x)",
        trace_ev.2 as f64 / c_ev.2.max(1) as f64
    );
}
