//! # caliper-bench — harnesses regenerating the paper's tables & figures
//!
//! One binary per evaluation artifact:
//!
//! | binary   | paper artifact | content |
//! |----------|----------------|---------|
//! | `table1` | Table I        | snapshots & output records per config |
//! | `fig3`   | Figure 3       | on-line aggregation overhead (wall-clock) |
//! | `fig4`   | Figure 4       | cross-process aggregation weak scaling |
//! | `fig5`   | Figure 5       | kernel profile (sampled) |
//! | `fig6`   | Figure 6       | MPI function profile |
//! | `fig7`   | Figure 7       | load balance across ranks |
//! | `fig8`   | Figure 8       | AMR level time per timestep |
//! | `fig9`   | Figure 9       | AMR level time per MPI rank |
//!
//! Criterion micro-benchmarks live in `benches/` and cover the
//! snapshot-processing hot path, the ablations called out in DESIGN.md
//! §4, and the query engine.
//!
//! All binaries accept `--quick` for a reduced problem size and write
//! CSV to stdout with commentary on stderr, so their output can be
//! piped into plotting tools directly.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::Arc;

use caliper_data::{AttributeStore, Value};
use caliper_format::{CaliReader, Dataset};
use caliper_query::QueryResult;

/// The paper's three aggregation schemes (§V-B), as `aggregate.key`
/// config values over the seven CleverLeaf attributes.
pub mod schemes {
    /// Scheme A: all attributes except the iteration number.
    pub const A: &str = "function,annotation,kernel,amr.level,mpi.function,mpi.rank";
    /// Scheme B: only two attributes.
    pub const B: &str = "kernel,mpi.function";
    /// Scheme C: all attributes including the main loop iteration.
    pub const C: &str =
        "function,annotation,kernel,amr.level,iteration#mainloop,mpi.function,mpi.rank";
    /// The aggregation attributes/operators used for all schemes.
    pub const OPS: &str = "count,sum(time.duration),min(time.duration),max(time.duration)";
}

/// Merge per-rank datasets into one (shared dictionary), as feeding all
/// per-process `.cali` files to the query tool would.
pub fn merge_datasets(datasets: &[Dataset]) -> Dataset {
    let mut merged = Dataset::new();
    for ds in datasets {
        let bytes = caliper_format::cali::to_bytes(ds);
        let mut reader = CaliReader::into_dataset(merged);
        reader
            .read_stream(std::io::BufReader::new(&bytes[..]))
            .expect("in-memory cali roundtrip");
        merged = reader.finish();
    }
    merged
}

/// Extract `(key column, value column)` pairs from a query result, for
/// CSV emission. Missing cells are skipped.
pub fn result_pairs(result: &QueryResult, key: &str, value: &str) -> Vec<(String, f64)> {
    let store: &Arc<AttributeStore> = &result.store;
    let (Some(k), Some(v)) = (store.find(key), store.find(value)) else {
        return Vec::new();
    };
    result
        .records
        .iter()
        .filter_map(|rec| {
            // Records where the key attribute was not set still carry
            // aggregation results (the paper's tables include such
            // entries); render their key as the empty string.
            let key = rec
                .path_string(k.id())
                .map(|v| v.to_string())
                .unwrap_or_default();
            let value = rec.get(v.id())?.to_f64()?;
            Some((key, value))
        })
        .collect()
}

/// Look up a numeric result cell by a string key column value.
pub fn result_value(result: &QueryResult, key_col: &str, key: &str, value_col: &str) -> Option<f64> {
    let k = result.store.find(key_col)?;
    let v = result.store.find(value_col)?;
    result
        .records
        .iter()
        .find(|r| {
            r.path_string(k.id())
                .map(|val| val == Value::str(key))
                .unwrap_or(false)
        })
        .and_then(|r| r.get(v.id())?.to_f64())
}

/// Render a horizontal ASCII bar chart (for quick eyeballing of the
/// figure shapes in a terminal).
pub fn bar_chart(rows: &[(String, f64)], width: usize) -> String {
    let max = rows.iter().map(|(_, v)| *v).fold(0.0, f64::max);
    let label_width = rows.iter().map(|(l, _)| l.len()).max().unwrap_or(0);
    let mut out = String::new();
    for (label, value) in rows {
        let bar = if max > 0.0 {
            ((value / max) * width as f64).round() as usize
        } else {
            0
        };
        out.push_str(&format!(
            "{label:<label_width$} |{} {value:.2}\n",
            "#".repeat(bar)
        ));
    }
    out
}

/// Basic statistics over a sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Stats {
    /// Arithmetic mean.
    pub mean: f64,
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
}

/// Median of a sample (0 for empty input).
pub fn median(samples: &[f64]) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let mid = sorted.len() / 2;
    if sorted.len().is_multiple_of(2) {
        (sorted[mid - 1] + sorted[mid]) / 2.0
    } else {
        sorted[mid]
    }
}

/// Compute mean/min/max of a sample (empty input yields zeros).
pub fn stats(samples: &[f64]) -> Stats {
    if samples.is_empty() {
        return Stats {
            mean: 0.0,
            min: 0.0,
            max: 0.0,
        };
    }
    let sum: f64 = samples.iter().sum();
    Stats {
        mean: sum / samples.len() as f64,
        min: samples.iter().copied().fold(f64::INFINITY, f64::min),
        max: samples.iter().copied().fold(f64::NEG_INFINITY, f64::max),
    }
}

/// Five-number summary (for the Figure 7 distribution plot).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FiveNum {
    /// Minimum.
    pub min: f64,
    /// First quartile.
    pub q1: f64,
    /// Median.
    pub median: f64,
    /// Third quartile.
    pub q3: f64,
    /// Maximum.
    pub max: f64,
}

/// Compute the five-number summary of a sample.
pub fn five_num(samples: &[f64]) -> FiveNum {
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let q = |p: f64| -> f64 {
        if sorted.is_empty() {
            return 0.0;
        }
        let idx = p * (sorted.len() - 1) as f64;
        let lo = idx.floor() as usize;
        let hi = idx.ceil() as usize;
        let frac = idx - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    };
    FiveNum {
        min: q(0.0),
        q1: q(0.25),
        median: q(0.5),
        q3: q(0.75),
        max: q(1.0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_basics() {
        let s = stats(&[1.0, 2.0, 3.0]);
        assert_eq!(s.mean, 2.0);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 3.0);
        assert_eq!(stats(&[]).mean, 0.0);
    }

    #[test]
    fn five_num_quartiles() {
        let f = five_num(&[4.0, 1.0, 3.0, 2.0, 5.0]);
        assert_eq!(f.min, 1.0);
        assert_eq!(f.median, 3.0);
        assert_eq!(f.max, 5.0);
        assert_eq!(f.q1, 2.0);
        assert_eq!(f.q3, 4.0);
    }

    #[test]
    fn bar_chart_scales() {
        let chart = bar_chart(
            &[("a".to_string(), 10.0), ("bb".to_string(), 5.0)],
            10,
        );
        let lines: Vec<&str> = chart.lines().collect();
        assert!(lines[0].contains("##########"));
        assert!(lines[1].contains("#####"));
        assert!(!lines[1].contains("######"));
    }

    #[test]
    fn merge_datasets_combines_records() {
        use caliper_data::{Entry, RecordBuilder, SnapshotRecord};
        let make = |n: i64| {
            let mut ds = Dataset::new();
            let rec = RecordBuilder::new(&ds.store).with("x", n).build();
            let entries = rec
                .pairs()
                .iter()
                .map(|(a, v)| Entry::Imm(*a, v.clone()))
                .collect();
            ds.push(SnapshotRecord::from_entries(entries));
            ds
        };
        let merged = merge_datasets(&[make(1), make(2)]);
        assert_eq!(merged.len(), 2);
        assert_eq!(merged.store.len(), 1);
    }
}
