//! The "expand" formatter: one record per line as
//! `label=value,label=value,...` — Caliper's human-greppable debug
//! output for record streams.

use caliper_data::{AttributeStore, FlatRecord};

use crate::escape::escape_into;

/// Render one record in expand form.
pub fn expand_record(store: &AttributeStore, record: &FlatRecord) -> String {
    let mut out = String::new();
    for (i, (attr, value)) in record.pairs().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        match store.name_of(*attr) {
            Some(name) => escape_into(&name, &mut out),
            None => out.push_str(&format!("#{attr}")),
        }
        out.push('=');
        escape_into(&value.to_string(), &mut out);
    }
    out
}

/// Render a record list, one record per line.
pub fn expand_records(store: &AttributeStore, records: &[FlatRecord]) -> String {
    let mut out = String::new();
    for rec in records {
        out.push_str(&expand_record(store, rec));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use caliper_data::{Value, ValueType};

    #[test]
    fn expands_in_record_order() {
        let store = AttributeStore::new();
        let a = store.create_simple("function", ValueType::Str);
        let b = store.create_simple("loop.iteration", ValueType::Int);
        let mut rec = FlatRecord::new();
        rec.push(a.id(), Value::str("main"));
        rec.push(a.id(), Value::str("foo"));
        rec.push(b.id(), Value::Int(17));
        assert_eq!(
            expand_record(&store, &rec),
            "function=main,function=foo,loop.iteration=17"
        );
    }

    #[test]
    fn escapes_separators_in_values() {
        let store = AttributeStore::new();
        let a = store.create_simple("x", ValueType::Str);
        let mut rec = FlatRecord::new();
        rec.push(a.id(), Value::str("a,b=c"));
        assert_eq!(expand_record(&store, &rec), "x=a\\,b\\=c");
    }

    #[test]
    fn multiple_records_one_per_line() {
        let store = AttributeStore::new();
        let a = store.create_simple("x", ValueType::Int);
        let mut r1 = FlatRecord::new();
        r1.push(a.id(), Value::Int(1));
        let mut r2 = FlatRecord::new();
        r2.push(a.id(), Value::Int(2));
        assert_eq!(expand_records(&store, &[r1, r2]), "x=1\nx=2\n");
    }
}
