//! Binary `.cali` stream codec (CALB v1, plus the shared primitives
//! CALB v2 in [`crate::binary_v2`] builds on).
//!
//! The text codec in [`crate::cali`] is self-describing and greppable;
//! this module provides a compact binary variant of the same stream
//! model (real Caliper's snapshot buffers are binary-encoded for
//! exactly this reason). In brief: a `"CALB"` magic plus version byte,
//! then tagged records — attribute and node dictionary entries before
//! first use, context and globals records carrying the data — with
//! varint/zigzag integers and type-directed value encoding.
//!
//! The normative byte-level specification of both stream versions
//! (record layouts, the v2 block/zone-map/footer structures,
//! versioning and torn-tail recovery rules) lives in **`docs/CALB.md`**;
//! this doc comment is intentionally only a summary.

use std::io::{self, Write};
use std::path::Path;

use caliper_data::{
    AttrId, Attribute, Entry, FlatRecord, FxHashMap, FxHashSet, NodeId, Properties,
    SnapshotRecord, Value, ValueType, NODE_NONE,
};

use crate::cali::CaliError;
use crate::dataset::Dataset;
use crate::policy::{ReadPolicy, ReadReport};
use crate::pushdown::Pushdown;

/// Stream magic prefix identifying the binary `CALB` flavor.
pub const MAGIC: &[u8; 4] = b"CALB";
pub(crate) const VERSION: u8 = 1;

pub(crate) const TAG_ATTR: u8 = 0x01;
pub(crate) const TAG_NODE: u8 = 0x02;
pub(crate) const TAG_CTX: u8 = 0x03;
pub(crate) const TAG_GLOBALS: u8 = 0x04;

// ---- varint primitives ----

pub(crate) fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

pub(crate) fn put_zigzag(out: &mut Vec<u8>, v: i64) {
    put_varint(out, ((v << 1) ^ (v >> 63)) as u64);
}

pub(crate) struct Cursor<'a> {
    pub(crate) bytes: &'a [u8],
    pub(crate) pos: usize,
}

impl<'a> Cursor<'a> {
    pub(crate) fn err(&self, message: impl Into<String>) -> CaliError {
        CaliError::Parse {
            line: self.pos,
            message: message.into(),
        }
    }

    pub(crate) fn u8(&mut self) -> Result<u8, CaliError> {
        let b = *self
            .bytes
            .get(self.pos)
            .ok_or_else(|| self.err("unexpected end of stream"))?;
        self.pos += 1;
        Ok(b)
    }

    pub(crate) fn varint(&mut self) -> Result<u64, CaliError> {
        let mut v = 0u64;
        let mut shift = 0;
        loop {
            let byte = self.u8()?;
            if shift >= 64 {
                return Err(self.err("varint overflow"));
            }
            v |= ((byte & 0x7f) as u64) << shift;
            if byte & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
        }
    }

    pub(crate) fn zigzag(&mut self) -> Result<i64, CaliError> {
        let v = self.varint()?;
        Ok(((v >> 1) as i64) ^ -((v & 1) as i64))
    }

    pub(crate) fn take(&mut self, n: usize) -> Result<&'a [u8], CaliError> {
        // `n` comes straight from an attacker-controllable length field;
        // compare against the remainder rather than computing `pos + n`,
        // which overflows for huge lengths.
        if n > self.bytes.len() - self.pos {
            return Err(self.err("unexpected end of stream"));
        }
        let slice = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    pub(crate) fn at_end(&self) -> bool {
        self.pos >= self.bytes.len()
    }
}

pub(crate) fn put_value(out: &mut Vec<u8>, vtype: ValueType, value: &Value) {
    match vtype {
        ValueType::Str => {
            let text = value.to_text();
            put_varint(out, text.len() as u64);
            out.extend_from_slice(text.as_bytes());
        }
        ValueType::Int => put_zigzag(out, value.to_i64().unwrap_or(0)),
        ValueType::UInt => put_varint(out, value.to_u64().unwrap_or(0)),
        ValueType::Float => out.extend_from_slice(&value.to_f64().unwrap_or(0.0).to_le_bytes()),
        ValueType::Bool => out.push(value.is_truthy() as u8),
    }
}

pub(crate) fn get_value(cursor: &mut Cursor<'_>, vtype: ValueType) -> Result<Value, CaliError> {
    Ok(match vtype {
        ValueType::Str => {
            let len = cursor.varint()? as usize;
            let bytes = cursor.take(len)?;
            let text = std::str::from_utf8(bytes)
                .map_err(|_| cursor.err("invalid UTF-8 in string value"))?;
            Value::str(text)
        }
        ValueType::Int => Value::Int(cursor.zigzag()?),
        ValueType::UInt => Value::UInt(cursor.varint()?),
        ValueType::Float => {
            let bytes = cursor.take(8)?;
            let bytes = bytes
                .try_into()
                .map_err(|_| cursor.err("short float value"))?;
            Value::Float(f64::from_le_bytes(bytes))
        }
        ValueType::Bool => Value::Bool(cursor.u8()? != 0),
    })
}

pub(crate) fn type_tag(vtype: ValueType) -> u8 {
    match vtype {
        ValueType::Str => 0,
        ValueType::Int => 1,
        ValueType::UInt => 2,
        ValueType::Float => 3,
        ValueType::Bool => 4,
    }
}

pub(crate) fn type_from_tag(tag: u8) -> Option<ValueType> {
    Some(match tag {
        0 => ValueType::Str,
        1 => ValueType::Int,
        2 => ValueType::UInt,
        3 => ValueType::Float,
        4 => ValueType::Bool,
        _ => return None,
    })
}

// ---- writer ----

/// Streaming binary writer (mirrors [`crate::cali::CaliWriter`]).
pub struct BinaryWriter {
    pub(crate) out: Vec<u8>,
    written_attrs: FxHashSet<AttrId>,
    written_nodes: FxHashSet<NodeId>,
    pub(crate) dangling_drops: u64,
}

impl BinaryWriter {
    /// Create a writer with the stream header emitted.
    pub fn new() -> BinaryWriter {
        BinaryWriter::with_version(VERSION)
    }

    /// Create a writer emitting the given stream version byte (the v2
    /// codec shares the v1 dictionary machinery).
    pub(crate) fn with_version(version: u8) -> BinaryWriter {
        let mut out = Vec::with_capacity(4096);
        out.extend_from_slice(MAGIC);
        out.push(version);
        BinaryWriter {
            out,
            written_attrs: FxHashSet::default(),
            written_nodes: FxHashSet::default(),
            dangling_drops: 0,
        }
    }

    /// Number of attribute/node references dropped because the id did
    /// not resolve in the dataset (mirrors
    /// [`CaliWriter::dangling_drops`](crate::cali::CaliWriter::dangling_drops)).
    pub fn dangling_drops(&self) -> u64 {
        self.dangling_drops
    }

    pub(crate) fn ensure_attr(&mut self, ds: &Dataset, id: AttrId) {
        if self.written_attrs.contains(&id) {
            return;
        }
        let Some(attr) = ds.store.get(id) else {
            self.dangling_drops += 1;
            return;
        };
        self.written_attrs.insert(id);
        self.out.push(TAG_ATTR);
        put_varint(&mut self.out, id as u64);
        put_varint(&mut self.out, attr.name().len() as u64);
        self.out.extend_from_slice(attr.name().as_bytes());
        self.out.push(type_tag(attr.value_type()));
        put_varint(&mut self.out, attr.properties().bits() as u64);
    }

    pub(crate) fn ensure_node(&mut self, ds: &Dataset, id: NodeId) {
        if id == NODE_NONE || self.written_nodes.contains(&id) {
            return;
        }
        // Iterative ancestor collection (deep nesting must not recurse).
        let mut chain = Vec::new();
        let mut cur = id;
        while cur != NODE_NONE && !self.written_nodes.contains(&cur) {
            let Some(node) = ds.tree.node(cur) else {
                self.dangling_drops += 1;
                break;
            };
            let parent = node.parent;
            chain.push((cur, node));
            cur = parent;
        }
        for (id, node) in chain.into_iter().rev() {
            self.ensure_attr(ds, node.attr);
            self.written_nodes.insert(id);
            let vtype = ds
                .store
                .get(node.attr)
                .map(|a| a.value_type())
                .unwrap_or(ValueType::Str);
            self.out.push(TAG_NODE);
            put_varint(&mut self.out, id as u64);
            put_varint(&mut self.out, node.attr as u64);
            let parent_code = if node.parent == NODE_NONE {
                0
            } else {
                node.parent as u64 + 1
            };
            put_varint(&mut self.out, parent_code);
            put_value(&mut self.out, vtype, &node.value);
        }
    }

    fn write_imms(&mut self, ds: &Dataset, imms: &[(AttrId, Value)]) {
        put_varint(&mut self.out, imms.len() as u64);
        for (attr, value) in imms {
            let vtype = ds
                .store
                .get(*attr)
                .map(|a| a.value_type())
                .unwrap_or(ValueType::Str);
            put_varint(&mut self.out, *attr as u64);
            put_value(&mut self.out, vtype, value);
        }
    }

    /// Write one snapshot record.
    pub fn write_snapshot(&mut self, ds: &Dataset, record: &SnapshotRecord) {
        let mut refs = Vec::new();
        let mut imms = Vec::new();
        for entry in record.entries() {
            match entry {
                Entry::Node(id) => refs.push(*id),
                Entry::Imm(attr, value) => imms.push((*attr, value.clone())),
            }
        }
        for &r in &refs {
            self.ensure_node(ds, r);
        }
        for (a, _) in &imms {
            self.ensure_attr(ds, *a);
        }
        self.out.push(TAG_CTX);
        put_varint(&mut self.out, refs.len() as u64);
        for r in refs {
            put_varint(&mut self.out, r as u64);
        }
        self.write_imms(ds, &imms);
    }

    /// Write one globals record.
    pub fn write_globals(&mut self, ds: &Dataset, record: &FlatRecord) {
        let imms: Vec<_> = record.pairs().to_vec();
        for (a, _) in &imms {
            self.ensure_attr(ds, *a);
        }
        self.out.push(TAG_GLOBALS);
        self.write_imms(ds, &imms);
    }

    /// Write a whole dataset and return the bytes.
    pub fn finish(self) -> Vec<u8> {
        self.out
    }
}

impl Default for BinaryWriter {
    fn default() -> BinaryWriter {
        BinaryWriter::new()
    }
}

/// Serialize a dataset to the binary format.
pub fn to_binary(ds: &Dataset) -> Vec<u8> {
    let mut w = BinaryWriter::new();
    for g in &ds.globals {
        w.write_globals(ds, g);
    }
    for rec in &ds.records {
        w.write_snapshot(ds, rec);
    }
    w.finish()
}

/// Per-stream decoder state: the id remapping tables built from the
/// attr/node records seen so far.
pub(crate) struct BinaryDecoder {
    pub(crate) attr_map: FxHashMap<u64, Attribute>,
    pub(crate) node_map: FxHashMap<u64, NodeId>,
}

impl BinaryDecoder {
    pub(crate) fn new() -> BinaryDecoder {
        BinaryDecoder {
            attr_map: FxHashMap::default(),
            node_map: FxHashMap::default(),
        }
    }

    pub(crate) fn lookup_attr(
        &self,
        cursor: &Cursor<'_>,
        id: u64,
        what: &str,
        report: &mut ReadReport,
    ) -> Result<Attribute, CaliError> {
        match self.attr_map.get(&id) {
            Some(attr) => Ok(attr.clone()),
            None => {
                report.dangling_dropped += 1;
                Err(cursor.err(format!("{what} references undeclared attribute {id}")))
            }
        }
    }

    /// Decode one record at the cursor; `Ok(true)` for data records
    /// (ctx/globals). The dataset is mutated only once the record has
    /// fully decoded, so an error leaves `ds` at the previous record
    /// boundary.
    pub(crate) fn read_record(
        &mut self,
        cursor: &mut Cursor<'_>,
        ds: &mut Dataset,
        report: &mut ReadReport,
    ) -> Result<bool, CaliError> {
        let tag = cursor.u8()?;
        match tag {
            TAG_ATTR => {
                let id = cursor.varint()?;
                let len = cursor.varint()? as usize;
                let name_bytes = cursor.take(len)?;
                let name = std::str::from_utf8(name_bytes)
                    .map_err(|_| cursor.err("invalid UTF-8 in attribute name"))?
                    .to_string();
                let vtype = type_from_tag(cursor.u8()?)
                    .ok_or_else(|| cursor.err("invalid value type tag"))?;
                let props = Properties::from_bits(cursor.varint()? as u32);
                let attr = ds
                    .store
                    .create(&name, vtype, props)
                    .map_err(|e| cursor.err(e.to_string()))?;
                self.attr_map.insert(id, attr);
                Ok(false)
            }
            TAG_NODE => {
                let id = cursor.varint()?;
                let attr_id = cursor.varint()?;
                let parent_code = cursor.varint()?;
                let attr = self.lookup_attr(cursor, attr_id, "node", report)?;
                let value = get_value(cursor, attr.value_type())?;
                let parent = if parent_code == 0 {
                    NODE_NONE
                } else {
                    match self.node_map.get(&(parent_code - 1)) {
                        Some(local) => *local,
                        None => {
                            report.dangling_dropped += 1;
                            return Err(cursor.err("node references unknown parent"));
                        }
                    }
                };
                let local = ds.tree.get_child(parent, attr.id(), &value);
                self.node_map.insert(id, local);
                Ok(false)
            }
            TAG_CTX => {
                let mut rec = SnapshotRecord::new();
                let nrefs = cursor.varint()?;
                for _ in 0..nrefs {
                    let id = cursor.varint()?;
                    let local = match self.node_map.get(&id) {
                        Some(local) => *local,
                        None => {
                            report.dangling_dropped += 1;
                            return Err(cursor.err(format!("ref to unknown node {id}")));
                        }
                    };
                    rec.push_node(local);
                }
                let nimm = cursor.varint()?;
                for _ in 0..nimm {
                    let attr_id = cursor.varint()?;
                    let attr = self.lookup_attr(cursor, attr_id, "imm", report)?;
                    let value = get_value(cursor, attr.value_type())?;
                    rec.push_imm(attr.id(), value);
                }
                ds.records.push(rec);
                Ok(true)
            }
            TAG_GLOBALS => {
                let mut rec = FlatRecord::new();
                let nimm = cursor.varint()?;
                for _ in 0..nimm {
                    let attr_id = cursor.varint()?;
                    let attr = self.lookup_attr(cursor, attr_id, "global", report)?;
                    let value = get_value(cursor, attr.value_type())?;
                    rec.push(attr.id(), value);
                }
                ds.globals.push(rec);
                Ok(true)
            }
            other => Err(cursor.err(format!("unknown record tag 0x{other:02x}"))),
        }
    }
}

/// Parse a binary stream, appending into `ds` (merging semantics like
/// the text reader: ids are remapped into the target dataset).
pub fn read_binary_into(bytes: &[u8], ds: Dataset) -> Result<Dataset, CaliError> {
    read_binary_into_with(bytes, ds, ReadPolicy::Strict, &mut ReadReport::default())
}

/// Parse a binary stream under `policy`, appending into `ds` and
/// accounting into `report`.
///
/// Binary framing cannot be resynchronized after a corrupt record — a
/// bad length field poisons every byte that follows — so
/// [`ReadPolicy::Lenient`] has *valid-prefix* semantics here: decoding
/// stops at the first malformed record, keeps everything decoded so
/// far, and marks the report truncated. A bad magic or version is an
/// error in either mode (the input is not a damaged `CALB` stream, it
/// is not a `CALB` stream at all).
pub fn read_binary_into_with(
    bytes: &[u8],
    ds: Dataset,
    policy: ReadPolicy,
    report: &mut ReadReport,
) -> Result<Dataset, CaliError> {
    read_binary_into_filtered(bytes, ds, policy, report, None)
}

/// Parse a binary stream like [`read_binary_into_with`], additionally
/// applying a WHERE-predicate [`Pushdown`] where the encoding supports
/// it. CALB v2 streams evaluate the predicates against per-block zone
/// maps and skip blocks that provably contain no matching record
/// (accounted in [`ReadReport::blocks_skipped`]); v1 streams have no
/// block structure and ignore the pushdown entirely.
pub fn read_binary_into_filtered(
    bytes: &[u8],
    mut ds: Dataset,
    policy: ReadPolicy,
    report: &mut ReadReport,
    pushdown: Option<&Pushdown>,
) -> Result<Dataset, CaliError> {
    let mut cursor = Cursor { bytes, pos: 0 };
    let magic = cursor.take(4)?;
    if magic != MAGIC {
        return Err(cursor.err("not a binary cali stream (bad magic)"));
    }
    let version = cursor.u8()?;
    if version == crate::binary_v2::VERSION_V2 {
        return crate::binary_v2::read_v2_body(cursor, ds, policy, report, pushdown);
    }
    if version != VERSION {
        return Err(cursor.err(format!("unsupported binary cali version {version}")));
    }

    let mut decoder = BinaryDecoder::new();
    while !cursor.at_end() {
        match decoder.read_record(&mut cursor, &mut ds, report) {
            Ok(is_data) => {
                if is_data {
                    report.records += 1;
                }
            }
            Err(e) => {
                if !policy.is_lenient() {
                    return Err(e);
                }
                report.skipped += 1;
                report.truncated = true;
                report.note_error(e.to_string());
                if report.skipped > policy.max_errors() {
                    return Err(e);
                }
                return Ok(ds);
            }
        }
    }
    Ok(ds)
}

/// Parse a binary stream into a fresh dataset.
pub fn from_binary(bytes: &[u8]) -> Result<Dataset, CaliError> {
    read_binary_into(bytes, Dataset::new())
}

/// Parse a binary stream into a fresh dataset under `policy`, returning
/// the dataset together with the read report.
pub fn from_binary_with(
    bytes: &[u8],
    policy: ReadPolicy,
) -> Result<(Dataset, ReadReport), CaliError> {
    let mut report = ReadReport::default();
    let ds = read_binary_into_with(bytes, Dataset::new(), policy, &mut report)?;
    Ok((ds, report))
}

/// Write a dataset to a binary file.
pub fn write_file(ds: &Dataset, path: impl AsRef<Path>) -> io::Result<()> {
    let bytes = to_binary(ds);
    caliper_data::metrics::global()
        .counter("format.writer.bytes")
        .add(bytes.len() as u64);
    let mut file = std::fs::File::create(path)?;
    file.write_all(&bytes)?;
    file.flush()
}

/// Read a binary file into a dataset.
pub fn read_file(path: impl AsRef<Path>) -> Result<Dataset, CaliError> {
    let bytes = std::fs::read(path)?;
    from_binary(&bytes)
}

/// Detect the stream flavor from the first bytes and parse accordingly
/// (used by tools that accept both formats).
pub fn from_bytes_auto(bytes: &[u8]) -> Result<Dataset, CaliError> {
    if bytes.starts_with(MAGIC) {
        from_binary(bytes)
    } else {
        crate::cali::from_bytes(bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Dataset {
        let mut ds = Dataset::new();
        let func = ds.attribute("function", ValueType::Str, Properties::NESTED);
        let iter = ds.attribute("iteration", ValueType::Int, Properties::AS_VALUE);
        let dur = ds.attribute(
            "time.duration",
            ValueType::Float,
            Properties::AS_VALUE | Properties::AGGREGATABLE,
        );
        let flag = ds.attribute("flag", ValueType::Bool, Properties::AS_VALUE);
        let count = ds.attribute("n", ValueType::UInt, Properties::AS_VALUE);
        ds.set_global("experiment", "binary-test");
        let main = ds.tree.get_child(NODE_NONE, func.id(), &Value::str("main"));
        let foo = ds.tree.get_child(main, func.id(), &Value::str("foo"));
        for i in 0..20i64 {
            let mut rec = SnapshotRecord::new();
            rec.push_node(if i % 3 == 0 { main } else { foo });
            rec.push_imm(iter.id(), Value::Int(i - 10));
            rec.push_imm(dur.id(), Value::Float(i as f64 * 0.25));
            rec.push_imm(flag.id(), Value::Bool(i % 2 == 0));
            rec.push_imm(count.id(), Value::UInt(i as u64 * 1000));
            ds.push(rec);
        }
        ds
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let ds = sample();
        let bytes = to_binary(&ds);
        let back = from_binary(&bytes).unwrap();
        assert_eq!(back.len(), ds.len());
        assert_eq!(back.global("experiment"), Some(Value::str("binary-test")));
        let orig: Vec<String> = ds.flat_records().map(|r| r.describe(&ds.store)).collect();
        let read: Vec<String> = back
            .flat_records()
            .map(|r| r.describe(&back.store))
            .collect();
        assert_eq!(orig, read);
        // attribute metadata survives
        let dur = back.store.find("time.duration").unwrap();
        assert!(dur.is_aggregatable());
        assert_eq!(dur.value_type(), ValueType::Float);
    }

    #[test]
    fn binary_is_smaller_than_text() {
        let ds = sample();
        let binary = to_binary(&ds).len();
        let text = crate::cali::to_bytes(&ds).len();
        assert!(
            binary * 2 < text,
            "binary {binary} should be < half of text {text}"
        );
    }

    #[test]
    fn merging_two_streams() {
        let ds = sample();
        let bytes = to_binary(&ds);
        let merged = read_binary_into(&bytes, from_binary(&bytes).unwrap()).unwrap();
        assert_eq!(merged.len(), 2 * ds.len());
        assert_eq!(merged.store.len(), ds.store.len());
        assert_eq!(merged.tree.len(), ds.tree.len());
    }

    #[test]
    fn truncation_and_corruption_are_errors_not_panics() {
        let bytes = to_binary(&sample());
        for cut in 0..bytes.len().min(64) {
            let _ = from_binary(&bytes[..cut]); // must not panic
        }
        for pos in (0..bytes.len()).step_by(11) {
            let mut corrupted = bytes.clone();
            corrupted[pos] ^= 0xff;
            let _ = from_binary(&corrupted); // must not panic
        }
        assert!(from_binary(b"NOPE").is_err());
        assert!(from_binary(b"CALB\x63").is_err()); // bad version
    }

    #[test]
    fn lenient_truncation_keeps_the_valid_prefix() {
        let ds = sample();
        let bytes = to_binary(&ds);
        let full = from_binary(&bytes).unwrap().len();
        let mut last = 0usize;
        for cut in 5..=bytes.len() {
            let (prefix, report) =
                from_binary_with(&bytes[..cut], ReadPolicy::lenient()).unwrap();
            // Monotone: longer prefixes never decode fewer records.
            assert!(prefix.len() >= last, "cut {cut}");
            last = prefix.len();
            if cut < bytes.len() {
                assert!(report.truncated || prefix.len() == full || report.is_clean());
            }
        }
        assert_eq!(last, full);
    }

    #[test]
    fn lenient_garbage_tail_is_reported() {
        let ds = sample();
        let mut bytes = to_binary(&ds);
        bytes.extend_from_slice(&[0xee; 16]);
        let (back, report) = from_binary_with(&bytes, ReadPolicy::lenient()).unwrap();
        assert_eq!(back.len(), ds.len());
        assert!(report.truncated);
        assert_eq!(report.skipped, 1);
        assert!(report.errors[0].contains("unknown record tag"));
    }

    #[test]
    fn bad_header_is_an_error_even_when_lenient() {
        assert!(from_binary_with(b"NOPE", ReadPolicy::lenient()).is_err());
        assert!(from_binary_with(b"CALB\x63", ReadPolicy::lenient()).is_err());
    }

    #[test]
    fn auto_detection_picks_the_right_parser() {
        let ds = sample();
        let binary = to_binary(&ds);
        let text = crate::cali::to_bytes(&ds);
        assert_eq!(from_bytes_auto(&binary).unwrap().len(), ds.len());
        assert_eq!(from_bytes_auto(&text).unwrap().len(), ds.len());
    }

    #[test]
    fn varints_roundtrip() {
        for v in [0u64, 1, 127, 128, 16383, 16384, u64::MAX] {
            let mut buf = Vec::new();
            put_varint(&mut buf, v);
            let mut cursor = Cursor {
                bytes: &buf,
                pos: 0,
            };
            assert_eq!(cursor.varint().unwrap(), v);
        }
        for v in [0i64, -1, 1, i64::MIN, i64::MAX, -12345] {
            let mut buf = Vec::new();
            put_zigzag(&mut buf, v);
            let mut cursor = Cursor {
                bytes: &buf,
                pos: 0,
            };
            assert_eq!(cursor.zigzag().unwrap(), v);
        }
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("caliper-binary-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sample.calb");
        let ds = sample();
        write_file(&ds, &path).unwrap();
        let back = read_file(&path).unwrap();
        assert_eq!(back.len(), ds.len());
        std::fs::remove_file(&path).ok();
    }
}
