//! Collapsed-stack ("flamegraph") output.
//!
//! Renders aggregation results in the `folded` format consumed by
//! Brendan Gregg's `flamegraph.pl` and by `inferno`:
//!
//! ```text
//! main;hydro_cycle;calc-dt 4242
//! ```
//!
//! Path components come from the selected key columns in order (nested
//! attributes contribute their whole `a/b/c` path, split on `/`); the
//! value is the first numeric result column, rounded to an integer as
//! the format requires.

use caliper_data::{Attribute, FlatRecord};

/// Render records as collapsed stacks. `path_columns` build the stack
/// (left = outermost); `value_column` supplies the sample weight.
/// Records missing the value column, or with no path at all, are
/// skipped.
pub fn records_to_flamegraph(
    path_columns: &[Attribute],
    value_column: &Attribute,
    records: &[FlatRecord],
) -> String {
    let mut out = String::new();
    for rec in records {
        let Some(value) = rec.get(value_column.id()).and_then(|v| v.to_f64()) else {
            continue;
        };
        let mut frames: Vec<String> = Vec::new();
        for col in path_columns {
            if let Some(path) = rec.path_string(col.id()) {
                for frame in path.to_string().split('/') {
                    if !frame.is_empty() {
                        // The folded format reserves ';' and ' '.
                        frames.push(frame.replace([';', ' '], "_"));
                    }
                }
            }
        }
        if frames.is_empty() {
            frames.push("(root)".to_string());
        }
        out.push_str(&frames.join(";"));
        out.push(' ');
        out.push_str(&format!("{}\n", value.round() as i64));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use caliper_data::{AttributeStore, Value, ValueType};

    #[test]
    fn renders_folded_stacks() {
        let store = AttributeStore::new();
        let func = store.create_simple("function", ValueType::Str);
        let kernel = store.create_simple("kernel", ValueType::Str);
        let time = store.create_simple("time", ValueType::Float);

        let mut rec = FlatRecord::new();
        rec.push(func.id(), Value::str("main"));
        rec.push(func.id(), Value::str("hydro cycle"));
        rec.push(kernel.id(), Value::str("calc-dt"));
        rec.push(time.id(), Value::Float(42.4));

        let out = records_to_flamegraph(&[func, kernel], &time, &[rec]);
        assert_eq!(out, "main;hydro_cycle;calc-dt 42\n");
    }

    #[test]
    fn records_without_value_are_skipped() {
        let store = AttributeStore::new();
        let func = store.create_simple("function", ValueType::Str);
        let time = store.create_simple("time", ValueType::Float);
        let mut rec = FlatRecord::new();
        rec.push(func.id(), Value::str("main"));
        let out = records_to_flamegraph(&[func], &time, &[rec]);
        assert!(out.is_empty());
    }

    #[test]
    fn pathless_records_get_a_root_frame() {
        let store = AttributeStore::new();
        let func = store.create_simple("function", ValueType::Str);
        let time = store.create_simple("time", ValueType::Float);
        let mut rec = FlatRecord::new();
        rec.push(time.id(), Value::Float(7.0));
        let out = records_to_flamegraph(&[func], &time, &[rec]);
        assert_eq!(out, "(root) 7\n");
    }
}
