//! # caliper-format — record stream I/O and output formatters
//!
//! This crate provides the storage substrate of the reproduction:
//!
//! * [`Dataset`] — the in-memory representation of one process's
//!   performance data (attribute dictionary + context tree + globals +
//!   snapshot records).
//! * [`cali`] — the self-describing, line-oriented `.cali` stream codec
//!   used to persist per-process datasets for off-line cross-process and
//!   analytical aggregation (paper §IV-C).
//! * [`table`], [`csv`], [`json`], [`expand`] — output formatters for
//!   aggregation results, mirroring `cali-query`'s formatters.
//!
//! ```
//! use caliper_format::{cali, Dataset};
//! use caliper_data::{Properties, SnapshotRecord, Value, ValueType, NODE_NONE};
//!
//! let mut ds = Dataset::new();
//! let func = ds.attribute("function", ValueType::Str, Properties::NESTED);
//! let node = ds.tree.get_child(NODE_NONE, func.id(), &Value::str("main"));
//! let mut rec = SnapshotRecord::new();
//! rec.push_node(node);
//! ds.push(rec);
//!
//! let bytes = cali::to_bytes(&ds);
//! let back = cali::from_bytes(&bytes).unwrap();
//! assert_eq!(back.len(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod binary;
pub mod binary_v2;
pub mod cali;
pub mod csv;
pub mod dataset;
pub mod escape;
pub mod expand;
pub mod flamegraph;
pub mod journal;
pub mod json;
pub mod policy;
pub mod pushdown;
pub mod reader;
pub mod retry;
pub mod schema;
pub mod table;

pub use binary_v2::{read_footer, to_binary_v2, to_binary_v2_with, BlockInfo, V2WriteOptions};
pub use cali::{CaliError, CaliReader, CaliWriter};
pub use pushdown::{AttrStats, Predicate, Pushdown, PushdownOp, ZoneStat};
pub use dataset::Dataset;
pub use schema::{AttrSchema, Schema};
pub use journal::{FlushPolicy, JournalCounters, JournalWriter, RecoveryReport, SEQ_ATTR};
pub use json::{parse_json, Json, JsonError};
pub use policy::{ReadPolicy, ReadReport, MAX_REPORTED_ERRORS};
pub use reader::{
    read_path, read_path_into, read_path_into_filtered, read_path_into_reported,
    read_path_reported, read_path_reported_filtered, RecordBatch,
};
pub use table::Table;
