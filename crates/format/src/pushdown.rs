//! Typed WHERE-predicate pushdown against CALB v2 zone maps.
//!
//! A [`Pushdown`] is the reader-side image of a CalQL WHERE clause: a
//! conjunction of per-attribute predicates, keyed by attribute *name*
//! (attribute ids are per-stream and mean nothing before a stream's
//! dictionary is decoded). The v2 block reader hands each block's zone
//! statistics — per-attribute presence counts and min/max bounds — to
//! [`Pushdown::may_match`], and skips the whole block without decoding
//! any record when the answer is provably "no record here can pass".
//!
//! # Soundness contract
//!
//! `may_match` may only return `false` when **no** record of the block
//! would satisfy the filter set at query time. The decision mirrors the
//! runtime comparison semantics exactly (see `FilterSet` in
//! `caliper-query`):
//!
//! * equality is `Value`'s `PartialEq` — class-strict, floats by bit
//!   pattern, with the deliberate `Int`/`UInt` numeric exception;
//! * ordering is `Value::total_cmp` — strings after numbers, numbers by
//!   `f64::total_cmp` of their numeric view;
//! * a comparison requires the attribute to be present (`absent` fails);
//! * `!=` passes only when *no* occurrence equals the literal, other
//!   operators when *any* occurrence satisfies.
//!
//! `PartialEq`-equal values always compare `Equal` under `total_cmp`
//! (bit-equal floats trivially; equal integers via their `f64` view), so
//! an equality match can never hide outside the `[min, max]` zone bounds
//! and the `=` skip rule is sound. The converse does **not** hold:
//! integers beyond 2⁵³ can compare `Equal` under `total_cmp` while being
//! `PartialEq`-different, so the `!=` skip rule additionally requires the
//! bound values to be exactly representable (see `exactly_comparable`).
//!
//! The full decision flow is specified in `docs/CALB.md` §"Predicate
//! pushdown" and DESIGN.md §10.

use std::cmp::Ordering;

use caliper_data::Value;

/// Comparison operators a pushdown predicate can carry — the reader-side
/// mirror of CalQL's `CmpOp`, kept separate so `caliper-format` does not
/// depend on the query crate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushdownOp {
    /// `=` — any occurrence equals the literal (`Value` equality).
    Eq,
    /// `!=` — no occurrence equals the literal.
    Ne,
    /// `<` — any occurrence orders below the literal (`total_cmp`).
    Lt,
    /// `<=` — any occurrence orders at or below the literal.
    Le,
    /// `>` — any occurrence orders above the literal.
    Gt,
    /// `>=` — any occurrence orders at or above the literal.
    Ge,
}

/// One conjunct of a pushed-down WHERE clause.
#[derive(Debug, Clone, PartialEq)]
pub enum Predicate {
    /// `WHERE attr` — the record must carry the attribute.
    Exists(String),
    /// `WHERE not(attr)` — the record must not carry the attribute.
    NotExists(String),
    /// `WHERE attr <op> literal` — a typed comparison.
    Cmp {
        /// The compared attribute's name.
        attr: String,
        /// The comparison operator.
        op: PushdownOp,
        /// The literal to compare against.
        value: Value,
    },
}

impl Predicate {
    /// The attribute name the predicate constrains.
    pub fn attr(&self) -> &str {
        match self {
            Predicate::Exists(a) | Predicate::NotExists(a) => a,
            Predicate::Cmp { attr, .. } => attr,
        }
    }
}

/// Per-attribute zone statistics of one block: how many of the block's
/// records carry the attribute, and the bounds of every occurrence's
/// value under [`Value::total_cmp`].
#[derive(Debug, Clone, PartialEq)]
pub struct ZoneStat {
    /// Records (not occurrences) in the block that carry the attribute
    /// at least once, after node-path expansion.
    pub present: u64,
    /// Minimum occurrence value under `total_cmp`.
    pub min: Value,
    /// Maximum occurrence value under `total_cmp`.
    pub max: Value,
}

/// What a block knows about one attribute name, as resolved through the
/// stream dictionary by the reader.
#[derive(Debug, Clone, Copy)]
pub enum AttrStats<'a> {
    /// The attribute cannot occur in any of the block's records: the
    /// name is undeclared in the stream, or declared but absent from
    /// this block's zone map.
    Absent,
    /// The reader cannot reason about the name safely (e.g. the stream
    /// dictionary declares it more than once); assume anything.
    Unsure,
    /// The attribute's zone statistics for this block.
    Zone(&'a ZoneStat),
}

/// A conjunction of pushdown predicates derived from a WHERE clause.
///
/// Predicates that cannot be soundly evaluated against zone maps (for
/// example filters on LET-derived attributes, which exist only after
/// decode) must simply be **omitted** by the producer: dropping a
/// conjunct can only make `may_match` more conservative, never unsound.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Pushdown {
    predicates: Vec<Predicate>,
}

impl Pushdown {
    /// An empty pushdown (never skips anything).
    pub fn new() -> Pushdown {
        Pushdown::default()
    }

    /// Add one conjunct.
    pub fn push(&mut self, predicate: Predicate) {
        self.predicates.push(predicate);
    }

    /// True when no predicates were pushed down (every block may match).
    pub fn is_empty(&self) -> bool {
        self.predicates.is_empty()
    }

    /// The pushed-down conjuncts.
    pub fn predicates(&self) -> &[Predicate] {
        &self.predicates
    }

    /// Conservative block test: could **any** record of a block with the
    /// given statistics satisfy every predicate? `rows` is the block's
    /// record count and `stats` resolves an attribute name to its
    /// per-block statistics. Returns `true` (do not skip) whenever in
    /// doubt.
    pub fn may_match<'z>(&self, rows: u64, stats: impl Fn(&str) -> AttrStats<'z>) -> bool {
        if rows == 0 {
            // An empty block trivially contains no matching record, but
            // there is nothing to decode either; never skip it so the
            // reader's record accounting stays uniform.
            return true;
        }
        self.predicates
            .iter()
            .all(|p| predicate_may_match(p, rows, &stats))
    }
}

/// Could any record of the block satisfy this one predicate?
fn predicate_may_match<'z>(
    predicate: &Predicate,
    rows: u64,
    stats: &impl Fn(&str) -> AttrStats<'z>,
) -> bool {
    match predicate {
        Predicate::Exists(attr) => match stats(attr) {
            AttrStats::Absent => false,
            AttrStats::Unsure => true,
            AttrStats::Zone(z) => z.present > 0,
        },
        Predicate::NotExists(attr) => match stats(attr) {
            // Every record lacks the attribute: all of them pass.
            AttrStats::Absent => true,
            AttrStats::Unsure => true,
            // Skip only when every record carries the attribute.
            AttrStats::Zone(z) => z.present < rows,
        },
        Predicate::Cmp { attr, op, value } => match stats(attr) {
            // Comparisons require presence: an all-absent block fails
            // every operator, `!=` included.
            AttrStats::Absent => false,
            AttrStats::Unsure => true,
            AttrStats::Zone(z) => {
                if z.present == 0 {
                    return false;
                }
                cmp_may_match(*op, value, z)
            }
        },
    }
}

/// Zone-bounds test for one comparison, mirroring `CmpOp::eval`.
fn cmp_may_match(op: PushdownOp, literal: &Value, zone: &ZoneStat) -> bool {
    let below_min = |v: &Value| v.total_cmp(&zone.min) == Ordering::Less;
    let above_max = |v: &Value| v.total_cmp(&zone.max) == Ordering::Greater;
    match op {
        // A PartialEq match implies total_cmp equality, so an equal
        // occurrence cannot hide outside [min, max].
        PushdownOp::Eq => !(below_min(literal) || above_max(literal)),
        // Skip only when provably *every* occurrence equals the literal:
        // both bounds are PartialEq-equal to it and the values are exact
        // under total_cmp, so nothing in between can differ.
        PushdownOp::Ne => {
            !(&zone.min == literal
                && &zone.max == literal
                && exactly_comparable(&zone.min)
                && exactly_comparable(&zone.max)
                && exactly_comparable(literal))
        }
        // Ordering mirrors total_cmp transitivity: e.g. for `<`, if even
        // the minimum does not order below the literal, nothing does.
        PushdownOp::Lt => zone.min.total_cmp(literal) == Ordering::Less,
        PushdownOp::Le => zone.min.total_cmp(literal) != Ordering::Greater,
        PushdownOp::Gt => zone.max.total_cmp(literal) == Ordering::Greater,
        PushdownOp::Ge => zone.max.total_cmp(literal) != Ordering::Less,
    }
}

/// True when `total_cmp` equality implies `PartialEq` equality for this
/// value: strings, floats (bit-pattern order), bools, and integers small
/// enough to be exact in an `f64`. Integers beyond 2⁵³ collapse under
/// the `f64` projection `total_cmp` uses, so they are excluded.
fn exactly_comparable(value: &Value) -> bool {
    const EXACT: u64 = 1 << 53;
    match value {
        Value::Str(_) | Value::Float(_) | Value::Bool(_) => true,
        Value::Int(i) => i.unsigned_abs() <= EXACT,
        Value::UInt(u) => *u <= EXACT,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn zone(present: u64, min: Value, max: Value) -> ZoneStat {
        ZoneStat { present, min, max }
    }

    fn one(pred: Predicate) -> Pushdown {
        let mut p = Pushdown::new();
        p.push(pred);
        p
    }

    fn cmp(attr: &str, op: PushdownOp, value: Value) -> Predicate {
        Predicate::Cmp {
            attr: attr.into(),
            op,
            value,
        }
    }

    #[test]
    fn empty_pushdown_never_skips() {
        let p = Pushdown::new();
        assert!(p.is_empty());
        assert!(p.may_match(10, |_| AttrStats::Absent));
    }

    #[test]
    fn exists_against_presence() {
        let p = one(Predicate::Exists("x".into()));
        assert!(!p.may_match(4, |_| AttrStats::Absent));
        assert!(p.may_match(4, |_| AttrStats::Unsure));
        let z = zone(1, Value::Int(0), Value::Int(0));
        assert!(p.may_match(4, |_| AttrStats::Zone(&z)));
    }

    #[test]
    fn not_exists_skips_only_saturated_blocks() {
        let p = one(Predicate::NotExists("x".into()));
        assert!(p.may_match(4, |_| AttrStats::Absent));
        let partial = zone(3, Value::Int(0), Value::Int(9));
        assert!(p.may_match(4, |_| AttrStats::Zone(&partial)));
        let full = zone(4, Value::Int(0), Value::Int(9));
        assert!(!p.may_match(4, |_| AttrStats::Zone(&full)));
    }

    #[test]
    fn cmp_requires_presence() {
        for op in [
            PushdownOp::Eq,
            PushdownOp::Ne,
            PushdownOp::Lt,
            PushdownOp::Le,
            PushdownOp::Gt,
            PushdownOp::Ge,
        ] {
            let p = one(cmp("x", op, Value::Int(1)));
            assert!(!p.may_match(4, |_| AttrStats::Absent), "{op:?}");
        }
    }

    #[test]
    fn eq_uses_zone_bounds() {
        let z = zone(4, Value::Int(10), Value::Int(20));
        let may = |v: i64| {
            one(cmp("x", PushdownOp::Eq, Value::Int(v))).may_match(4, |_| AttrStats::Zone(&z))
        };
        assert!(!may(9));
        assert!(may(10));
        assert!(may(15));
        assert!(may(20));
        assert!(!may(21));
    }

    #[test]
    fn orderings_use_the_right_bound() {
        let z = zone(4, Value::Float(1.0), Value::Float(2.0));
        let may = |op, v: f64| {
            one(cmp("x", op, Value::Float(v))).may_match(4, |_| AttrStats::Zone(&z))
        };
        // <  : only the min matters.
        assert!(!may(PushdownOp::Lt, 1.0));
        assert!(may(PushdownOp::Lt, 1.5));
        // <= : min == literal is enough.
        assert!(may(PushdownOp::Le, 1.0));
        assert!(!may(PushdownOp::Le, 0.5));
        // >  : only the max matters.
        assert!(!may(PushdownOp::Gt, 2.0));
        assert!(may(PushdownOp::Gt, 1.5));
        // >= : max == literal is enough.
        assert!(may(PushdownOp::Ge, 2.0));
        assert!(!may(PushdownOp::Ge, 2.5));
    }

    #[test]
    fn strings_order_against_strings() {
        let z = zone(2, Value::str("beta"), Value::str("delta"));
        assert!(one(cmp("x", PushdownOp::Eq, Value::str("charlie")))
            .may_match(2, |_| AttrStats::Zone(&z)));
        assert!(!one(cmp("x", PushdownOp::Eq, Value::str("epsilon")))
            .may_match(2, |_| AttrStats::Zone(&z)));
        // Numbers order before strings under total_cmp: a numeric
        // literal can never exceed a string max, so > skips.
        assert!(!one(cmp("x", PushdownOp::Lt, Value::Int(7)))
            .may_match(2, |_| AttrStats::Zone(&z)));
    }

    #[test]
    fn ne_skips_only_provably_constant_blocks() {
        let all_seven = zone(4, Value::Int(7), Value::Int(7));
        assert!(!one(cmp("x", PushdownOp::Ne, Value::Int(7)))
            .may_match(4, |_| AttrStats::Zone(&all_seven)));
        assert!(one(cmp("x", PushdownOp::Ne, Value::Int(8)))
            .may_match(4, |_| AttrStats::Zone(&all_seven)));
        // Beyond 2^53, total_cmp equality no longer implies value
        // equality — never skip.
        let big = (1i64 << 53) + 1;
        let huge = zone(4, Value::Int(big), Value::Int(big));
        assert!(one(cmp("x", PushdownOp::Ne, Value::Int(big)))
            .may_match(4, |_| AttrStats::Zone(&huge)));
    }

    #[test]
    fn int_uint_equality_crosses_classes() {
        // Runtime PartialEq lets Int(5) match UInt(5); the zone test
        // must therefore keep such blocks.
        let z = zone(4, Value::UInt(5), Value::UInt(5));
        assert!(one(cmp("x", PushdownOp::Eq, Value::Int(5)))
            .may_match(4, |_| AttrStats::Zone(&z)));
        assert!(!one(cmp("x", PushdownOp::Eq, Value::Int(6)))
            .may_match(4, |_| AttrStats::Zone(&z)));
        // And Ne against a constant block skips across classes too
        // (PartialEq is numeric for the Int/UInt pair).
        assert!(!one(cmp("x", PushdownOp::Ne, Value::Int(5)))
            .may_match(4, |_| AttrStats::Zone(&z)));
    }

    #[test]
    fn conjunction_skips_when_any_predicate_proves_empty() {
        let z = zone(4, Value::Int(0), Value::Int(9));
        let mut p = Pushdown::new();
        p.push(Predicate::Exists("x".into()));
        p.push(cmp("x", PushdownOp::Gt, Value::Int(100)));
        let stats = |name: &str| {
            if name == "x" {
                AttrStats::Zone(&z)
            } else {
                AttrStats::Absent
            }
        };
        assert!(!p.may_match(4, stats));
    }

    #[test]
    fn empty_blocks_are_never_skipped() {
        let p = one(Predicate::Exists("x".into()));
        assert!(p.may_match(0, |_| AttrStats::Absent));
    }
}
