//! File-level reading entry points and decoded record batches.
//!
//! This module is the input side of the thread-parallel query engine
//! (`caliper-query`'s `parallel` module) and of the serial CLI tools:
//!
//! * [`read_path`] / [`read_path_into`] — read one `.cali` (text) or
//!   `CALB` (binary) file, auto-detecting the flavor from the stream
//!   header, and attribute any failure to the file's path via
//!   [`CaliError::File`];
//! * [`RecordBatch`] / [`record_batches`] — split a decoded [`Dataset`]
//!   into contiguous, cheaply cloneable slices of its snapshot records.
//!   Batches share the dataset behind an `Arc`, so handing them to
//!   worker threads copies nothing but a reference and a range.
//!
//! Batches preserve stream order: batch *i* holds records
//! `[i·n, (i+1)·n)`, so concatenating all batches of a file in batch
//! order replays the file's record stream exactly. Parallel consumers
//! rely on this to keep their merge order — and therefore their output —
//! independent of scheduling.

use std::ops::Range;
use std::path::Path;
use std::sync::Arc;

use caliper_data::{AttrId, Entry, FlatRecord, FxHashMap, NodeId, Value};

use crate::binary;
use crate::cali::{CaliError, CaliReader};
use crate::dataset::Dataset;
use crate::policy::{ReadPolicy, ReadReport};
use crate::pushdown::Pushdown;

/// Reads one `.cali` or `CALB` file into a fresh dataset, sniffing the
/// format from the stream header (not the file name). Errors carry the
/// path ([`CaliError::File`]).
pub fn read_path(path: impl AsRef<Path>) -> Result<Dataset, CaliError> {
    read_path_into(path, Dataset::new())
}

/// Reads one `.cali` or `CALB` file, appending into `ds` (ids are
/// remapped into the shared dictionary, as with
/// [`CaliReader::into_dataset`]). Errors carry the path.
pub fn read_path_into(path: impl AsRef<Path>, ds: Dataset) -> Result<Dataset, CaliError> {
    read_path_into_reported(path, ds, ReadPolicy::Strict).map(|(ds, _)| ds)
}

/// Reads one `.cali` or `CALB` file into a fresh dataset under `policy`,
/// returning the per-file [`ReadReport`] alongside the data.
pub fn read_path_reported(
    path: impl AsRef<Path>,
    policy: ReadPolicy,
) -> Result<(Dataset, ReadReport), CaliError> {
    read_path_into_reported(path, Dataset::new(), policy)
}

/// Reads one `.cali` or `CALB` file under `policy`, appending into `ds`.
///
/// The report is attributed to the file's path. Failing to *open* the
/// file is an error regardless of policy — a mistyped path must never
/// be silently "skipped" — whereas decode problems inside the file
/// follow the policy (skip-and-count when lenient, abort when strict).
pub fn read_path_into_reported(
    path: impl AsRef<Path>,
    ds: Dataset,
    policy: ReadPolicy,
) -> Result<(Dataset, ReadReport), CaliError> {
    read_path_into_filtered(path, ds, policy, None)
}

/// Reads one `.cali` or `CALB` file into a fresh dataset under `policy`
/// with an optional WHERE-predicate [`Pushdown`], returning the per-file
/// [`ReadReport`].
///
/// Block-structured streams (CALB v2) use the pushdown to skip whole
/// record blocks whose zone maps prove no record can match — accounted
/// in [`ReadReport::blocks_skipped`] and the
/// `format.reader.blocks_skipped` metric. Text and v1 binary streams
/// decode fully; the pushdown never changes which records *match* a
/// query, only how many provably-irrelevant ones get decoded.
pub fn read_path_reported_filtered(
    path: impl AsRef<Path>,
    policy: ReadPolicy,
    pushdown: Option<&Pushdown>,
) -> Result<(Dataset, ReadReport), CaliError> {
    read_path_into_filtered(path, Dataset::new(), policy, pushdown)
}

/// Reads one `.cali` or `CALB` file under `policy` with an optional
/// pushdown, appending into `ds` (see [`read_path_reported_filtered`]).
pub fn read_path_into_filtered(
    path: impl AsRef<Path>,
    ds: Dataset,
    policy: ReadPolicy,
    pushdown: Option<&Pushdown>,
) -> Result<(Dataset, ReadReport), CaliError> {
    let path = path.as_ref();
    let attribute = |e: CaliError| e.with_path(path);
    let mut report = ReadReport::for_path(path);
    let bytes = read_bytes_with_faults(path).map_err(|e| attribute(CaliError::Io(e)))?;
    let ds = if bytes.starts_with(binary::MAGIC) {
        binary::read_binary_into_filtered(&bytes, ds, policy, &mut report, pushdown)
            .map_err(attribute)?
    } else {
        let mut reader = CaliReader::into_dataset(ds);
        reader
            .read_stream_with(std::io::BufReader::new(&bytes[..]), policy, &mut report)
            .map_err(attribute)?;
        reader.finish()
    };
    record_read_metrics(bytes.len() as u64, &report);
    Ok((ds, report))
}

/// Read a file's bytes through the `io.open` / `io.read` failpoints
/// with bounded-backoff retry on transient errors.
///
/// Fault decisions key on the hashed path (stable across runs and
/// thread counts) with a per-path attempt counter, so a `fail(n)` spec
/// makes the first `n` attempts on each file fail and an `err(p, seed)`
/// spec fails a reproducible subset of (file, attempt) pairs. Retries
/// taken are published as `format.reader.retries` — a function of the
/// spec and the file set alone, so the metric stays stable across
/// `--threads`.
fn read_bytes_with_faults(path: &Path) -> std::io::Result<Vec<u8>> {
    use crate::retry::{injected_error, RetryPolicy};
    use caliper_faults::sites;

    let label = path.to_string_lossy();
    let key = caliper_faults::stable_hash(&label);
    // Jitter seeded by the hashed path: shards retrying *different*
    // files back off on decorrelated schedules (no stampede), while any
    // given file backs off identically on every run.
    let (result, retries) = RetryPolicy::default().with_jitter(key).run(|| {
        if caliper_faults::trigger(sites::IO_OPEN, key, &label).is_some() {
            return Err(injected_error(sites::IO_OPEN));
        }
        let mut bytes = std::fs::read(path)?;
        if caliper_faults::trigger(sites::IO_READ, key, &label).is_some() {
            return Err(injected_error(sites::IO_READ));
        }
        caliper_faults::mutate(sites::IO_READ, key, &label, &mut bytes);
        Ok(bytes)
    });
    if retries > 0 {
        caliper_data::metrics::global()
            .counter("format.reader.retries")
            .add(u64::from(retries));
    }
    result
}

/// Fold one file's read outcome into the global `format.reader.*`
/// metrics. Every value is a function of the input bytes alone, so the
/// metrics stay [`Stability::Stable`](caliper_data::Stability) no
/// matter how many threads read files concurrently.
fn record_read_metrics(bytes: u64, report: &ReadReport) {
    let m = caliper_data::metrics::global();
    m.counter("format.reader.files").inc();
    m.counter("format.reader.bytes").add(bytes);
    m.counter("format.reader.records").add(report.records);
    m.counter("format.reader.skipped").add(report.skipped);
    m.counter("format.reader.dangling_dropped")
        .add(report.dangling_dropped);
    m.counter("format.reader.truncated")
        .add(u64::from(report.truncated));
    m.counter("format.reader.errors")
        .add(report.errors.len() as u64 + report.suppressed_errors);
    m.counter("format.reader.blocks_skipped")
        .add(report.blocks_skipped);
}

/// A contiguous run of one dataset's snapshot records, sharing the
/// dataset (store, tree, records) behind an `Arc`.
///
/// This is the unit of work the parallel query engine distributes:
/// cloning or sending a batch to another thread is O(1).
#[derive(Clone, Debug)]
pub struct RecordBatch {
    dataset: Arc<Dataset>,
    range: Range<usize>,
}

impl RecordBatch {
    /// The batch covering `range` of `dataset`'s records. Panics if the
    /// range is out of bounds.
    pub fn new(dataset: Arc<Dataset>, range: Range<usize>) -> RecordBatch {
        assert!(
            range.end <= dataset.records.len(),
            "batch range {range:?} out of bounds for {} records",
            dataset.records.len()
        );
        RecordBatch { dataset, range }
    }

    /// The dataset this batch slices.
    pub fn dataset(&self) -> &Arc<Dataset> {
        &self.dataset
    }

    /// Number of snapshot records in the batch.
    pub fn len(&self) -> usize {
        self.range.len()
    }

    /// True if the batch holds no records.
    pub fn is_empty(&self) -> bool {
        self.range.is_empty()
    }

    /// Iterates the batch's snapshot records expanded to flat records
    /// against the dataset's context tree, in stream order.
    pub fn flat_records(&self) -> impl Iterator<Item = FlatRecord> + '_ {
        self.dataset.records[self.range.clone()]
            .iter()
            .map(|r| r.unpack(&self.dataset.tree))
    }

    /// Visit the batch's records expanded to flat records, in stream
    /// order, caching node-path expansions across the batch.
    ///
    /// This is the aggregation hot path: records in a batch overwhelmingly
    /// share context-tree nodes, so walking the tree once per *unique*
    /// node (instead of once per record as [`flat_records`] does) removes
    /// most locking and allocation from the per-record cost.
    ///
    /// [`flat_records`]: RecordBatch::flat_records
    pub fn for_each_flat(&self, mut f: impl FnMut(FlatRecord)) {
        let mut cache: FxHashMap<NodeId, Vec<(AttrId, Value)>> = FxHashMap::default();
        for rec in &self.dataset.records[self.range.clone()] {
            let mut pairs: Vec<(AttrId, Value)> = Vec::with_capacity(rec.len() * 2);
            for entry in rec.entries() {
                match entry {
                    Entry::Node(id) => {
                        let path = cache
                            .entry(*id)
                            .or_insert_with(|| self.dataset.tree.path(*id));
                        pairs.extend_from_slice(path);
                    }
                    Entry::Imm(attr, value) => pairs.push((*attr, value.clone())),
                }
            }
            f(FlatRecord::from_pairs(pairs));
        }
    }
}

/// Splits `dataset` into batches of at most `batch_records` snapshot
/// records, in stream order. Always returns at least one batch (an
/// empty dataset yields one empty batch), so every input file produces
/// a work unit even when it only carries globals.
///
/// The decomposition depends only on the dataset's record count and
/// `batch_records` — never on who consumes the batches — which is what
/// lets a parallel consumer produce scheduling-independent results.
pub fn record_batches(dataset: Arc<Dataset>, batch_records: usize) -> Vec<RecordBatch> {
    assert!(batch_records > 0, "batch_records must be positive");
    let total = dataset.records.len();
    if total == 0 {
        return vec![RecordBatch::new(dataset, 0..0)];
    }
    (0..total)
        .step_by(batch_records)
        .map(|start| {
            RecordBatch::new(
                Arc::clone(&dataset),
                start..(start + batch_records).min(total),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use caliper_data::{Properties, SnapshotRecord, Value, ValueType};

    fn dataset_with(n: usize) -> Dataset {
        let mut ds = Dataset::new();
        let iter = ds.attribute("i", ValueType::Int, Properties::AS_VALUE);
        for i in 0..n {
            let mut rec = SnapshotRecord::new();
            rec.push_imm(iter.id(), Value::Int(i as i64));
            ds.push(rec);
        }
        ds
    }

    #[test]
    fn batches_partition_in_order() {
        let ds = Arc::new(dataset_with(10));
        let batches = record_batches(Arc::clone(&ds), 4);
        assert_eq!(batches.iter().map(RecordBatch::len).collect::<Vec<_>>(), [4, 4, 2]);
        let iter = ds.store.find("i").unwrap();
        let replay: Vec<i64> = batches
            .iter()
            .flat_map(|b| {
                b.flat_records()
                    .map(|r| r.get(iter.id()).unwrap().to_i64().unwrap())
                    .collect::<Vec<_>>()
            })
            .collect();
        assert_eq!(replay, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn empty_dataset_yields_one_empty_batch() {
        let batches = record_batches(Arc::new(Dataset::new()), 128);
        assert_eq!(batches.len(), 1);
        assert!(batches[0].is_empty());
    }

    #[test]
    fn read_path_reports_the_failing_file() {
        let err = read_path("/nonexistent/dir/x.cali").unwrap_err();
        let text = err.to_string();
        assert!(text.contains("/nonexistent/dir/x.cali"), "{text}");

        let dir = std::env::temp_dir().join("caliper-reader-test");
        std::fs::create_dir_all(&dir).unwrap();
        let bad = dir.join("bad.cali");
        std::fs::write(&bad, "__rec=node,id=0,attr=99,data=1\n").unwrap();
        let err = read_path(&bad).unwrap_err();
        let text = err.to_string();
        assert!(text.contains("bad.cali") && text.contains("undeclared"), "{text}");
        std::fs::remove_file(&bad).ok();
    }

    #[test]
    fn read_path_reported_attributes_and_accounts() {
        let dir = std::env::temp_dir().join("caliper-reader-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("damaged.cali");
        let ds = dataset_with(3);
        let mut text = String::from_utf8(crate::cali::to_bytes(&ds)).unwrap();
        text.push_str("garbage line\n");
        std::fs::write(&path, &text).unwrap();

        assert!(read_path(&path).is_err());
        let (back, report) = read_path_reported(&path, ReadPolicy::lenient()).unwrap();
        assert_eq!(back.len(), 3);
        assert_eq!(report.records, 3);
        assert_eq!(report.skipped, 1);
        assert_eq!(report.path.as_deref(), Some(path.as_path()));

        // Opening a missing path errors even under Lenient.
        assert!(read_path_reported("/nonexistent/x.cali", ReadPolicy::lenient()).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn read_path_sniffs_binary() {
        let dir = std::env::temp_dir().join("caliper-reader-test");
        std::fs::create_dir_all(&dir).unwrap();
        let ds = dataset_with(5);
        let text_path = dir.join("t.cali");
        let bin_path = dir.join("b.calb");
        crate::cali::write_file(&ds, &text_path).unwrap();
        crate::binary::write_file(&ds, &bin_path).unwrap();
        assert_eq!(read_path(&text_path).unwrap().len(), 5);
        assert_eq!(read_path(&bin_path).unwrap().len(), 5);
        std::fs::remove_file(&text_path).ok();
        std::fs::remove_file(&bin_path).ok();
    }
}
