//! Escaping rules of the `.cali` line encoding.
//!
//! The stream is line-oriented; fields are separated by `,` and keys from
//! values by `=`. Values may contain any of these characters, so they are
//! escaped with `\`. Newlines are encoded as `\n` (backslash + 'n') so a
//! record always occupies exactly one physical line.

/// Escape a value string for embedding in a `.cali` line.
pub fn escape(input: &str) -> String {
    let mut out = String::with_capacity(input.len());
    escape_into(input, &mut out);
    out
}

/// Escape `input`, appending to `out`. Avoids allocation when the caller
/// builds a whole line in one buffer.
pub fn escape_into(input: &str, out: &mut String) {
    for ch in input.chars() {
        match ch {
            '\\' => out.push_str("\\\\"),
            ',' => out.push_str("\\,"),
            '=' => out.push_str("\\="),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            other => out.push(other),
        }
    }
}

/// Reverse [`escape`]. Unknown escape sequences keep the escaped
/// character (lenient, so streams from newer writers stay readable).
pub fn unescape(input: &str) -> String {
    let mut out = String::with_capacity(input.len());
    let mut chars = input.chars();
    while let Some(ch) = chars.next() {
        if ch == '\\' {
            match chars.next() {
                Some('n') => out.push('\n'),
                Some('r') => out.push('\r'),
                Some(other) => out.push(other),
                None => out.push('\\'),
            }
        } else {
            out.push(ch);
        }
    }
    out
}

/// Split a `.cali` line into `(key, value)` fields on unescaped commas
/// and the first unescaped `=` in each field.
pub fn split_fields(line: &str) -> Vec<(String, String)> {
    let mut fields = Vec::new();
    let mut key = String::new();
    let mut value = String::new();
    let mut in_value = false;
    let mut chars = line.chars();
    let mut push_field = |key: &mut String, value: &mut String, in_value: &mut bool| {
        if !key.is_empty() || *in_value {
            fields.push((std::mem::take(key), std::mem::take(value)));
        }
        *in_value = false;
    };
    while let Some(ch) = chars.next() {
        match ch {
            '\\' => {
                let target = if in_value { &mut value } else { &mut key };
                match chars.next() {
                    Some('n') => target.push('\n'),
                    Some('r') => target.push('\r'),
                    Some(other) => target.push(other),
                    None => target.push('\\'),
                }
            }
            ',' => push_field(&mut key, &mut value, &mut in_value),
            '=' if !in_value => in_value = true,
            other => {
                if in_value {
                    value.push(other);
                } else {
                    key.push(other);
                }
            }
        }
    }
    push_field(&mut key, &mut value, &mut in_value);
    fields
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_plain() {
        assert_eq!(unescape(&escape("hello world")), "hello world");
    }

    #[test]
    fn roundtrip_special_chars() {
        let nasty = "a,b=c\\d\ne\rf";
        assert_eq!(unescape(&escape(nasty)), nasty);
        // escaped form has no raw separators or newlines
        let esc = escape(nasty);
        assert!(!esc.contains('\n'));
        for (i, ch) in esc.char_indices() {
            if ch == ',' || ch == '=' {
                assert_eq!(&esc[i - 1..i], "\\");
            }
        }
    }

    #[test]
    fn split_basic_fields() {
        let fields = split_fields("__rec=node,id=5,data=foo");
        assert_eq!(
            fields,
            vec![
                ("__rec".into(), "node".into()),
                ("id".into(), "5".into()),
                ("data".into(), "foo".into()),
            ]
        );
    }

    #[test]
    fn split_handles_escapes_and_equals_in_value() {
        let fields = split_fields("data=a\\,b\\=c,attr=x=y");
        assert_eq!(
            fields,
            vec![
                ("data".into(), "a,b=c".into()),
                ("attr".into(), "x=y".into()),
            ]
        );
    }

    #[test]
    fn split_empty_value_and_flag_fields() {
        let fields = split_fields("a=,b");
        assert_eq!(
            fields,
            vec![("a".into(), "".into()), ("b".into(), "".into())]
        );
        assert!(split_fields("").is_empty());
    }
}
