//! Write-ahead snapshot journaling: append-only `.cali` journals and
//! the recovery path that salvages them after a crash.
//!
//! The runtime's on-line aggregation (paper §IV) lives *inside* the
//! measured application, so an OOM kill or `kill -9` loses everything
//! buffered since startup. A journal closes that gap on the writer
//! side, pairing with the lenient readers in [`crate::policy`]:
//!
//! * [`JournalWriter`] appends snapshots to an append-only text `.cali`
//!   stream, one line per record, with attribute and context-tree
//!   metadata emitted in dependency order *before* first use (the
//!   [`crate::cali::CaliWriter`] invariant). A crash therefore tears at
//!   most the final line; every complete line is independently
//!   decodable.
//! * Records are buffered in memory and drained to the file by a
//!   [`FlushPolicy`]: every `flush_interval` records, whenever the
//!   buffer exceeds `max_buffer` bytes (a forced flush, counted for
//!   backpressure accounting), and optionally `fsync`ed for durability
//!   across OS crashes rather than just process crashes.
//! * [`recover_file`] / [`recover_bytes`] read a (possibly torn)
//!   journal under [`ReadPolicy::Lenient`], then deduplicate a
//!   double-written tail using the monotonic [`SEQ_ATTR`] sequence
//!   attribute and report exactly what was salvaged and what was lost
//!   in a [`RecoveryReport`].
//!
//! Crash-consistency contract: for a journal written with
//! `flush_interval = k`, a process death at any instant loses at most
//! the last `k - 1` appended records plus the one torn line; every
//! record flushed before the death is recovered verbatim.

use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use caliper_data::{Entry, FlatRecord, FxHashSet, SnapshotRecord};

use crate::cali::{CaliError, CaliReader, CaliWriter};
use crate::dataset::Dataset;
use crate::policy::{ReadPolicy, ReadReport};

/// Label of the monotonically increasing snapshot sequence attribute
/// stamped on every journaled snapshot. Recovery deduplicates a
/// double-written tail by keeping the first occurrence of each sequence
/// number and reports gaps in the sequence as lost records.
pub const SEQ_ATTR: &str = "journal.seq";

/// Header comment written at the top of a fresh journal file. Readers
/// skip `#` comments, so the marker costs nothing and identifies the
/// file as a journal to humans and tools.
pub const JOURNAL_HEADER: &str = "# caliper snapshot journal v1";

/// When buffered journal records are drained to the backing file.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlushPolicy {
    /// Flush after this many buffered records (1 = every record).
    pub flush_interval: u64,
    /// Flush whenever the in-memory buffer exceeds this many bytes,
    /// regardless of the record count — bounds journal memory and is
    /// counted as a *forced* flush (backpressure accounting).
    pub max_buffer: usize,
    /// `fsync` the file after each flush: survives OS crashes, not just
    /// process crashes, at a substantial per-flush cost.
    pub fsync: bool,
}

impl Default for FlushPolicy {
    fn default() -> FlushPolicy {
        FlushPolicy {
            flush_interval: 1,
            max_buffer: 1 << 20,
            fsync: false,
        }
    }
}

/// Counters describing what a [`JournalWriter`] has done so far.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct JournalCounters {
    /// Records (snapshots + globals) appended to the in-memory buffer.
    pub appended: u64,
    /// Records drained to the file (durable against process death).
    pub durable: u64,
    /// Buffer drains performed.
    pub flushes: u64,
    /// Flushes forced by the `max_buffer` byte cap rather than the
    /// record interval.
    pub forced_flushes: u64,
    /// `fsync` calls performed.
    pub syncs: u64,
    /// Transient write/fsync errors absorbed by bounded retry
    /// (mirrored as the `runtime.journal.retries` gauge).
    pub retries: u64,
}

/// Appends snapshots to an append-only `.cali` journal file.
///
/// Complete records are buffered in memory (so a crash never tears the
/// file mid-line on our account — only the OS can tear the final line
/// of a flush) and drained according to the [`FlushPolicy`].
pub struct JournalWriter {
    writer: CaliWriter<Vec<u8>>,
    file: std::fs::File,
    path: PathBuf,
    policy: FlushPolicy,
    pending: u64,
    counters: JournalCounters,
}

impl JournalWriter {
    /// Create (truncate) a journal at `path` and write the header line.
    pub fn create(path: impl Into<PathBuf>, policy: FlushPolicy) -> io::Result<JournalWriter> {
        let path = path.into();
        let mut file = std::fs::File::create(&path)?;
        file.write_all(format!("{JOURNAL_HEADER}\n").as_bytes())?;
        Ok(JournalWriter::over(file, path, policy))
    }

    /// Open an existing journal for appending — e.g. to resume after a
    /// restart. If the file does not end with a newline (a torn final
    /// line from the previous incarnation), a newline is appended first
    /// so the torn fragment becomes one lenient-skippable record and
    /// new records start on a fresh line. The writer re-declares
    /// attribute/node metadata lazily; the reader's id remapping merges
    /// the incarnations' overlapping id spaces correctly.
    ///
    /// Creates the file (with header) if it does not exist.
    pub fn open_append(path: impl Into<PathBuf>, policy: FlushPolicy) -> io::Result<JournalWriter> {
        let path = path.into();
        let mut file = std::fs::OpenOptions::new()
            .read(true)
            .create(true)
            .append(true)
            .open(&path)?;
        let len = file.seek(SeekFrom::End(0))?;
        if len == 0 {
            file.write_all(format!("{JOURNAL_HEADER}\n").as_bytes())?;
        } else {
            file.seek(SeekFrom::End(-1))?;
            let mut last = [0u8; 1];
            file.read_exact(&mut last)?;
            if last[0] != b'\n' {
                // A bare newline is not enough: a torn data record with
                // its tail entries cut off can still parse as a shorter
                // — wrong — record. `attr=torn` cannot parse as an
                // attribute id, so the fragment reliably fails as one
                // lenient-skippable line instead. (On a torn `attr`
                // metadata line the field is ignored; such a fragment
                // is harmless because the resumed writer re-declares
                // all metadata before referencing it.)
                file.write_all(b",attr=torn\n")?;
            }
            file.seek(SeekFrom::End(0))?;
        }
        Ok(JournalWriter::over(file, path, policy))
    }

    fn over(file: std::fs::File, path: PathBuf, policy: FlushPolicy) -> JournalWriter {
        JournalWriter {
            writer: CaliWriter::new(Vec::new()),
            file,
            path,
            policy: FlushPolicy {
                flush_interval: policy.flush_interval.max(1),
                ..policy
            },
            pending: 0,
            counters: JournalCounters::default(),
        }
    }

    /// The journal file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Counter snapshot.
    pub fn counters(&self) -> JournalCounters {
        self.counters.clone()
    }

    /// Records appended but not yet drained to the file.
    pub fn pending(&self) -> u64 {
        self.pending
    }

    fn after_append(&mut self) -> io::Result<()> {
        self.counters.appended += 1;
        self.pending += 1;
        if self.pending >= self.policy.flush_interval {
            self.flush()
        } else if self.writer.sink_mut().len() >= self.policy.max_buffer {
            self.counters.forced_flushes += 1;
            self.flush()
        } else {
            Ok(())
        }
    }

    /// Append one snapshot record (metadata it references is emitted
    /// first, on first use). `ds` supplies the attribute store and
    /// context tree the record's ids refer to.
    pub fn append_snapshot(&mut self, ds: &Dataset, record: &SnapshotRecord) -> io::Result<()> {
        self.writer.write_snapshot(ds, record)?;
        self.after_append()
    }

    /// Append one globals (dataset metadata) record.
    pub fn append_globals(&mut self, ds: &Dataset, record: &FlatRecord) -> io::Result<()> {
        self.writer.write_globals(ds, record)?;
        self.after_append()
    }

    /// Drain the buffered records to the file (and `fsync` if the
    /// policy asks for it). A no-op when nothing is buffered.
    ///
    /// Both the write-out and the `fsync` pass through the
    /// `journal.write` / `journal.fsync` failpoints and retry transient
    /// errors with bounded backoff ([`crate::retry`]); retries taken
    /// are counted in [`JournalCounters::retries`]. A `write_all` that
    /// fails mid-buffer may leave a torn partial flush in the file —
    /// exactly the torn-tail shape recovery already handles — so the
    /// buffer is retained and re-draining after a failed flush is safe:
    /// recovery deduplicates the double-written span via [`SEQ_ATTR`].
    pub fn flush(&mut self) -> io::Result<()> {
        use crate::retry::{injected_error, RetryPolicy};
        use caliper_faults::sites;

        if self.writer.sink_mut().is_empty() {
            return Ok(());
        }
        let label = self.path.to_string_lossy().into_owned();
        let key = caliper_faults::stable_hash(&label);
        let file = &mut self.file;
        let buf = self.writer.sink_mut();
        let (result, retries) = RetryPolicy::default().with_jitter(key).run(|| {
            if caliper_faults::trigger(sites::JOURNAL_WRITE, key, &label).is_some() {
                return Err(injected_error(sites::JOURNAL_WRITE));
            }
            file.write_all(buf)
        });
        self.counters.retries += u64::from(retries);
        result?;
        buf.clear();
        self.counters.durable += self.pending;
        self.pending = 0;
        self.counters.flushes += 1;
        if self.policy.fsync {
            let (result, retries) = RetryPolicy::default().with_jitter(key).run(|| {
                if caliper_faults::trigger(sites::JOURNAL_FSYNC, key, &label).is_some() {
                    return Err(injected_error(sites::JOURNAL_FSYNC));
                }
                file.sync_data()
            });
            self.counters.retries += u64::from(retries);
            result?;
            self.counters.syncs += 1;
        }
        Ok(())
    }
}

impl Drop for JournalWriter {
    fn drop(&mut self) {
        // Best-effort final drain; errors cannot be reported from drop.
        let _ = self.flush();
    }
}

/// What a journal recovery salvaged — and what it could not.
#[derive(Debug, Clone, Default)]
pub struct RecoveryReport {
    /// The underlying lenient read's accounting (skips, truncation,
    /// error messages).
    pub read: ReadReport,
    /// Snapshot records salvaged after deduplication.
    pub salvaged: u64,
    /// Globals (dataset metadata) records salvaged.
    pub globals: u64,
    /// Duplicate tail records dropped (same [`SEQ_ATTR`] value seen
    /// twice — a double-written tail after a resumed append).
    pub duplicates: u64,
    /// Snapshots without a [`SEQ_ATTR`] entry (kept, but they cannot be
    /// deduplicated or gap-checked).
    pub unsequenced: u64,
    /// Highest sequence number observed, if any.
    pub max_seq: Option<u64>,
    /// Sequence numbers in `0..=max_seq` with no surviving record —
    /// records lost to mid-stream corruption (a pure tail truncation
    /// leaves no gaps).
    pub missing: u64,
}

impl RecoveryReport {
    /// True when the journal was not recovered in full: lines were
    /// skipped, the stream was truncated, or the sequence has gaps.
    pub fn data_lost(&self) -> bool {
        self.read.skipped > 0 || self.read.truncated || self.missing > 0
    }

    /// One-line human-readable summary for stderr reporting.
    pub fn summary(&self) -> String {
        let name = self
            .read
            .path
            .as_ref()
            .map(|p| p.display().to_string())
            .unwrap_or_else(|| "<journal>".to_string());
        let mut line = format!(
            "{name}: salvaged {} snapshots + {} globals, {} corrupt lines skipped",
            self.salvaged, self.globals, self.read.skipped
        );
        if self.duplicates > 0 {
            line.push_str(&format!(", {} duplicate tail records dropped", self.duplicates));
        }
        if self.missing > 0 {
            line.push_str(&format!(", {} lost to sequence gaps", self.missing));
        }
        if self.read.truncated {
            line.push_str(", truncated");
        }
        if let Some(first) = self.read.errors.first() {
            line.push_str(&format!("; first error: {first}"));
        }
        line
    }
}

/// Recover a journal from a byte buffer: lenient read, then tail
/// deduplication by [`SEQ_ATTR`]. The returned dataset holds the
/// salvaged records (sequence entries are kept, for provenance).
pub fn recover_bytes(
    bytes: &[u8],
    policy: ReadPolicy,
) -> Result<(Dataset, RecoveryReport), CaliError> {
    recover_bytes_cancellable(bytes, policy, None)
}

/// [`recover_bytes`] under a cooperative
/// [`Deadline`](caliper_data::Deadline): replay stops at the deadline
/// with the salvaged prefix (report marked truncated, `read cancelled`
/// note). Sequence dedup and gap accounting still run over whatever was
/// decoded, so the partial report stays honest about missing spans.
pub fn recover_bytes_cancellable(
    bytes: &[u8],
    policy: ReadPolicy,
    deadline: Option<&caliper_data::Deadline>,
) -> Result<(Dataset, RecoveryReport), CaliError> {
    let mut read = ReadReport::default();
    // The writer terminates every record with a newline, so a final
    // line without one is a torn write and can never be a complete
    // record — but it might still *parse* as a shorter record with its
    // tail entries cut off. Drop it before parsing (regardless of
    // policy: this is the expected crash signature, not corruption).
    let body = match bytes.iter().rposition(|&b| b == b'\n') {
        Some(pos) if pos + 1 == bytes.len() => bytes,
        Some(pos) => {
            read.skipped += 1;
            read.truncated = true;
            read.note_error("torn final line (no trailing newline) dropped");
            &bytes[..pos + 1]
        }
        None => {
            if !bytes.is_empty() {
                read.skipped += 1;
                read.truncated = true;
                read.note_error("torn final line (no trailing newline) dropped");
            }
            &bytes[..0]
        }
    };
    let mut reader = CaliReader::new();
    reader.read_stream_cancellable(io::BufReader::new(body), policy, &mut read, deadline)?;
    Ok(dedup_by_sequence(reader.finish(), read))
}

/// Recover a journal file. I/O errors opening the file are returned
/// with the path attached ([`CaliError::File`]); the report's read
/// accounting also names the path.
pub fn recover_file(
    path: impl AsRef<Path>,
    policy: ReadPolicy,
) -> Result<(Dataset, RecoveryReport), CaliError> {
    recover_file_cancellable(path, policy, None)
}

/// [`recover_file`] under a cooperative
/// [`Deadline`](caliper_data::Deadline) — see
/// [`recover_bytes_cancellable`].
pub fn recover_file_cancellable(
    path: impl AsRef<Path>,
    policy: ReadPolicy,
    deadline: Option<&caliper_data::Deadline>,
) -> Result<(Dataset, RecoveryReport), CaliError> {
    let path = path.as_ref();
    let bytes = std::fs::read(path).map_err(|e| CaliError::from(e).with_path(path))?;
    let (ds, mut report) =
        recover_bytes_cancellable(&bytes, policy, deadline).map_err(|e| e.with_path(path))?;
    report.read.path = Some(path.to_path_buf());
    Ok((ds, report))
}

/// Drop duplicate-sequence snapshots (keeping first occurrences) and
/// account the salvage in a [`RecoveryReport`].
fn dedup_by_sequence(mut ds: Dataset, read: ReadReport) -> (Dataset, RecoveryReport) {
    let seq_attr = ds.store.find(SEQ_ATTR).map(|a| a.id());
    let mut report = RecoveryReport {
        globals: ds.globals.len() as u64,
        read,
        ..RecoveryReport::default()
    };
    let mut seen: FxHashSet<u64> = FxHashSet::default();
    let records = std::mem::take(&mut ds.records);
    let mut kept = Vec::with_capacity(records.len());
    for rec in records {
        let seq = seq_attr.and_then(|id| {
            rec.entries().iter().find_map(|e| match e {
                Entry::Imm(attr, value) if *attr == id => value.to_u64(),
                _ => None,
            })
        });
        match seq {
            Some(s) => {
                if seen.insert(s) {
                    report.max_seq = Some(report.max_seq.map_or(s, |m: u64| m.max(s)));
                    kept.push(rec);
                } else {
                    report.duplicates += 1;
                }
            }
            None => {
                report.unsequenced += 1;
                kept.push(rec);
            }
        }
    }
    report.salvaged = kept.len() as u64;
    report.missing = report
        .max_seq
        .map(|m| (m + 1).saturating_sub(seen.len() as u64))
        .unwrap_or(0);
    ds.records = kept;
    (ds, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use caliper_data::{Properties, Value, ValueType, NODE_NONE};

    /// A context dataset plus `n` snapshot records with stamped
    /// sequence numbers, mirroring what the runtime sink produces.
    fn journal_input(n: u64) -> (Dataset, Vec<SnapshotRecord>) {
        let ds = Dataset::new();
        let kernel = ds.attribute("kernel", ValueType::Str, Properties::NESTED);
        let time = ds.attribute(
            "time.duration",
            ValueType::Float,
            Properties::AS_VALUE | Properties::AGGREGATABLE,
        );
        let seq = ds.attribute(SEQ_ATTR, ValueType::UInt, Properties::AS_VALUE);
        let names = ["alpha", "beta", "gamma"];
        let records = (0..n)
            .map(|i| {
                let node = ds.tree.get_child(
                    NODE_NONE,
                    kernel.id(),
                    &Value::str(names[(i % 3) as usize]),
                );
                let mut rec = SnapshotRecord::new();
                rec.push_node(node);
                rec.push_imm(time.id(), Value::Float(i as f64));
                rec.push_imm(seq.id(), Value::UInt(i));
                rec
            })
            .collect();
        (ds, records)
    }

    fn write_journal(n: u64, policy: FlushPolicy) -> (PathBuf, Dataset) {
        let dir = std::env::temp_dir().join(format!(
            "caliper-journal-test-{}-{n}",
            std::process::id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("j{n}-{:?}.cali", policy.flush_interval));
        let (ds, records) = journal_input(n);
        let mut w = JournalWriter::create(&path, policy).unwrap();
        for rec in &records {
            w.append_snapshot(&ds, rec).unwrap();
        }
        w.flush().unwrap();
        (path, ds)
    }

    #[test]
    fn roundtrip_is_lossless() {
        let (path, ds) = write_journal(9, FlushPolicy::default());
        let (back, report) = recover_file(&path, ReadPolicy::lenient()).unwrap();
        assert_eq!(report.salvaged, 9);
        assert_eq!(report.duplicates, 0);
        assert_eq!(report.missing, 0);
        assert!(!report.data_lost(), "{}", report.summary());
        assert_eq!(report.max_seq, Some(8));
        let orig: Vec<String> = ds.flat_records().map(|r| r.describe(&ds.store)).collect();
        let read: Vec<String> = back
            .flat_records()
            .map(|r| r.describe(&back.store))
            .collect();
        // `ds` holds no records (they were journaled, not pushed), so
        // compare against a freshly rebuilt copy instead.
        assert!(orig.is_empty());
        let (mut full, records) = journal_input(9);
        for rec in records {
            full.push(rec);
        }
        let expect: Vec<String> = full
            .flat_records()
            .map(|r| r.describe(&full.store))
            .collect();
        assert_eq!(read, expect);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn flush_interval_batches_writes() {
        let (ds, records) = journal_input(10);
        let dir = std::env::temp_dir().join(format!("caliper-journal-batch-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("batched.cali");
        let policy = FlushPolicy {
            flush_interval: 4,
            ..FlushPolicy::default()
        };
        let mut w = JournalWriter::create(&path, policy).unwrap();
        for (i, rec) in records.iter().enumerate() {
            w.append_snapshot(&ds, rec).unwrap();
            // After 8 records, exactly two interval flushes happened.
            if i == 7 {
                assert_eq!(w.counters().flushes, 2);
                assert_eq!(w.counters().durable, 8);
            }
        }
        assert_eq!(w.pending(), 2);
        // The unflushed tail is not yet on disk.
        let (_, mid) = recover_file(&path, ReadPolicy::lenient()).unwrap();
        assert_eq!(mid.salvaged, 8);
        drop(w); // drop drains the tail
        let (_, after) = recover_file(&path, ReadPolicy::lenient()).unwrap();
        assert_eq!(after.salvaged, 10);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn max_buffer_forces_flushes() {
        let (ds, records) = journal_input(6);
        let dir = std::env::temp_dir().join(format!("caliper-journal-forced-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("forced.cali");
        let policy = FlushPolicy {
            flush_interval: u64::MAX,
            max_buffer: 1, // every append overflows the buffer
            fsync: true,
        };
        let mut w = JournalWriter::create(&path, policy).unwrap();
        for rec in &records {
            w.append_snapshot(&ds, rec).unwrap();
        }
        let c = w.counters();
        assert_eq!(c.forced_flushes, 6);
        assert_eq!(c.durable, 6);
        assert_eq!(c.syncs, c.flushes);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_tail_is_skipped_not_fatal() {
        let (path, _) = write_journal(5, FlushPolicy::default());
        let mut bytes = std::fs::read(&path).unwrap();
        // Simulate a crash mid-write: keep half of the final line.
        let keep = bytes.len() - 9;
        bytes.truncate(keep);
        let (_, report) = recover_bytes(&bytes, ReadPolicy::lenient()).unwrap();
        assert_eq!(report.salvaged, 4);
        assert_eq!(report.read.skipped, 1);
        assert!(report.data_lost());
        assert!(report.summary().contains("salvaged 4 snapshots"), "{}", report.summary());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn duplicate_tail_is_deduplicated() {
        let (path, _) = write_journal(5, FlushPolicy::default());
        let text = std::fs::read_to_string(&path).unwrap();
        let last_ctx = text
            .lines()
            .rfind(|l| l.starts_with("__rec=ctx"))
            .unwrap()
            .to_string();
        // A resumed append re-wrote the final record.
        let doubled = format!("{text}{last_ctx}\n");
        let (ds, report) = recover_bytes(doubled.as_bytes(), ReadPolicy::lenient()).unwrap();
        assert_eq!(report.salvaged, 5);
        assert_eq!(report.duplicates, 1);
        assert_eq!(ds.records.len(), 5);
        assert!(!report.data_lost());
        assert!(report.summary().contains("duplicate tail"), "{}", report.summary());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn sequence_gaps_are_counted_as_lost() {
        let (path, _) = write_journal(6, FlushPolicy::default());
        let text = std::fs::read_to_string(&path).unwrap();
        // Corrupt a mid-stream ctx record (not the tail): the sequence
        // skips one number.
        let mut ctx_seen = 0;
        let damaged: String = text
            .lines()
            .map(|l| {
                if l.starts_with("__rec=ctx") {
                    ctx_seen += 1;
                    if ctx_seen == 3 {
                        return "__rec=ctx,ref=9999\n".to_string();
                    }
                }
                format!("{l}\n")
            })
            .collect();
        let (_, report) = recover_bytes(damaged.as_bytes(), ReadPolicy::lenient()).unwrap();
        assert_eq!(report.salvaged, 5);
        assert_eq!(report.missing, 1);
        assert!(report.data_lost());
        assert!(report.summary().contains("lost to sequence gaps"), "{}", report.summary());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn open_append_terminates_a_torn_line() {
        let dir = std::env::temp_dir().join(format!("caliper-journal-append-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("resumed.cali");
        let (ds, records) = journal_input(4);
        {
            let mut w = JournalWriter::create(&path, FlushPolicy::default()).unwrap();
            for rec in &records[..2] {
                w.append_snapshot(&ds, rec).unwrap();
            }
        }
        // Tear the final line (no trailing newline).
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.truncate(bytes.len() - 7);
        std::fs::write(&path, &bytes).unwrap();
        // Resume: the torn fragment must not swallow the first resumed
        // record. The resumed writer re-declares all metadata.
        {
            let mut w = JournalWriter::open_append(&path, FlushPolicy::default()).unwrap();
            for rec in &records[2..] {
                w.append_snapshot(&ds, rec).unwrap();
            }
        }
        let (back, report) = recover_file(&path, ReadPolicy::lenient()).unwrap();
        assert_eq!(report.salvaged, 3); // seq 0 survives, 1 torn, 2 and 3 resumed
        assert_eq!(report.read.skipped, 1);
        assert_eq!(report.missing, 1);
        assert_eq!(back.records.len(), 3);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn open_append_creates_missing_files() {
        let dir = std::env::temp_dir().join(format!("caliper-journal-create-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("fresh.cali");
        std::fs::remove_file(&path).ok();
        let (ds, records) = journal_input(2);
        let mut w = JournalWriter::open_append(&path, FlushPolicy::default()).unwrap();
        for rec in &records {
            w.append_snapshot(&ds, rec).unwrap();
        }
        drop(w);
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.starts_with(JOURNAL_HEADER));
        let (_, report) = recover_file(&path, ReadPolicy::lenient()).unwrap();
        assert_eq!(report.salvaged, 2);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn globals_are_journaled_and_counted() {
        let dir = std::env::temp_dir().join(format!("caliper-journal-globals-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("globals.cali");
        let mut ds = Dataset::new();
        ds.set_global("mpi.rank", 3i64);
        let mut w = JournalWriter::create(&path, FlushPolicy::default()).unwrap();
        let globals = ds.globals.clone();
        for g in &globals {
            w.append_globals(&ds, g).unwrap();
        }
        drop(w);
        let (back, report) = recover_file(&path, ReadPolicy::lenient()).unwrap();
        assert_eq!(report.globals, 1);
        assert_eq!(back.global("mpi.rank"), Some(Value::Int(3)));
        std::fs::remove_file(&path).ok();
    }
}
