//! Read policies and per-file read reports — the ingest side of the
//! fault-tolerance layer.
//!
//! Real profiling runs produce truncated and corrupt stream files:
//! crashed jobs leave half-written `.cali` files behind, file systems
//! flip bits, and concatenated logs splice garbage between records.
//! The readers in [`crate::cali`] and [`crate::binary`] therefore accept
//! a [`ReadPolicy`]:
//!
//! * [`ReadPolicy::Strict`] — the historical behavior: the first
//!   malformed record aborts the read with a [`CaliError`].
//! * [`ReadPolicy::Lenient`] — decode everything that is decodable.
//!   The text reader resynchronizes at the next line after a corrupt
//!   record; the binary reader keeps the valid prefix (binary framing
//!   cannot be resynchronized after a corrupt length field). Reads
//!   give up only after `max_errors` records have been skipped.
//!
//! Either way, nothing is dropped invisibly: a [`ReadReport`] counts the
//! records decoded, the records skipped, the entries dropped because of
//! dangling ids, and carries the first few error messages verbatim.
//!
//! [`CaliError`]: crate::cali::CaliError

use std::path::PathBuf;

/// Maximum number of verbatim error messages kept in a [`ReadReport`];
/// further errors are only counted ([`ReadReport::suppressed_errors`]).
pub const MAX_REPORTED_ERRORS: usize = 8;

/// How the readers treat malformed input.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReadPolicy {
    /// Abort on the first malformed record (historical behavior).
    #[default]
    Strict,
    /// Skip malformed records and keep decoding, giving up only after
    /// `max_errors` records have been skipped.
    Lenient {
        /// Maximum number of skipped records before the read fails
        /// anyway (a wholly-garbage input should not be silently
        /// reduced to zero records when the operator expected data).
        max_errors: u64,
    },
}

impl ReadPolicy {
    /// Lenient with no practical skip limit.
    pub fn lenient() -> ReadPolicy {
        ReadPolicy::Lenient {
            max_errors: u64::MAX,
        }
    }

    /// True for any [`ReadPolicy::Lenient`] variant.
    pub fn is_lenient(&self) -> bool {
        matches!(self, ReadPolicy::Lenient { .. })
    }

    /// The skip budget: 0 under [`ReadPolicy::Strict`].
    pub fn max_errors(&self) -> u64 {
        match self {
            ReadPolicy::Strict => 0,
            ReadPolicy::Lenient { max_errors } => *max_errors,
        }
    }
}

/// What one read actually decoded — and what it had to leave behind.
///
/// A report is produced for every read, strict or lenient; a strict
/// read that succeeds simply reports itself clean. Multi-file tools
/// print the non-clean reports as a skipped-work summary.
#[derive(Debug, Clone, Default)]
pub struct ReadReport {
    /// The file this report describes, when known.
    pub path: Option<PathBuf>,
    /// Data records (snapshots + globals) decoded successfully.
    pub records: u64,
    /// Record blocks encountered in block-structured streams (CALB v2);
    /// 0 for text and v1 binary streams.
    pub blocks: u64,
    /// Blocks skipped wholesale because a pushed-down WHERE predicate
    /// proved no contained record could match (their records are not
    /// counted in `records`). A skip is an optimization, not an error —
    /// it never makes a report unclean.
    pub blocks_skipped: u64,
    /// Records (text lines / binary records) skipped as malformed.
    pub skipped: u64,
    /// Entries dropped because they referenced undeclared attribute or
    /// node ids (counted inside `skipped` records that carried them).
    pub dangling_dropped: u64,
    /// The stream ended mid-record (truncated file); the decoded prefix
    /// was kept.
    pub truncated: bool,
    /// The first [`MAX_REPORTED_ERRORS`] error messages, verbatim.
    pub errors: Vec<String>,
    /// Errors beyond the first [`MAX_REPORTED_ERRORS`] (counted only).
    pub suppressed_errors: u64,
}

impl ReadReport {
    /// A fresh report attributed to `path`.
    pub fn for_path(path: impl Into<PathBuf>) -> ReadReport {
        ReadReport {
            path: Some(path.into()),
            ..ReadReport::default()
        }
    }

    /// True when nothing was skipped, dropped, or truncated.
    pub fn is_clean(&self) -> bool {
        self.skipped == 0 && self.dangling_dropped == 0 && !self.truncated && self.errors.is_empty()
    }

    /// Record one error message (keeping the first few verbatim).
    pub fn note_error(&mut self, message: impl Into<String>) {
        if self.errors.len() < MAX_REPORTED_ERRORS {
            self.errors.push(message.into());
        } else {
            self.suppressed_errors += 1;
        }
    }

    /// Fold another report into this one (multi-file totals).
    pub fn absorb(&mut self, other: &ReadReport) {
        self.records += other.records;
        self.blocks += other.blocks;
        self.blocks_skipped += other.blocks_skipped;
        self.skipped += other.skipped;
        self.dangling_dropped += other.dangling_dropped;
        self.truncated |= other.truncated;
        for e in &other.errors {
            self.note_error(e.clone());
        }
        self.suppressed_errors += other.suppressed_errors;
    }

    /// One-line human-readable summary, e.g. for a stderr report.
    pub fn summary(&self) -> String {
        let name = self
            .path
            .as_ref()
            .map(|p| p.display().to_string())
            .unwrap_or_else(|| "<stream>".to_string());
        let mut line = format!(
            "{name}: {} records decoded, {} skipped",
            self.records, self.skipped
        );
        if self.dangling_dropped > 0 {
            line.push_str(&format!(", {} dangling-id drops", self.dangling_dropped));
        }
        if self.truncated {
            line.push_str(", truncated");
        }
        if let Some(first) = self.errors.first() {
            line.push_str(&format!("; first error: {first}"));
        }
        let more = self.errors.len().saturating_sub(1) as u64 + self.suppressed_errors;
        if more > 0 {
            line.push_str(&format!(" (+{more} more)"));
        }
        line
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strict_has_no_skip_budget() {
        assert_eq!(ReadPolicy::Strict.max_errors(), 0);
        assert!(!ReadPolicy::Strict.is_lenient());
        assert!(ReadPolicy::lenient().is_lenient());
        assert_eq!(ReadPolicy::lenient().max_errors(), u64::MAX);
    }

    #[test]
    fn report_caps_verbatim_errors() {
        let mut report = ReadReport::default();
        for i in 0..(MAX_REPORTED_ERRORS + 5) {
            report.note_error(format!("e{i}"));
        }
        assert_eq!(report.errors.len(), MAX_REPORTED_ERRORS);
        assert_eq!(report.suppressed_errors, 5);
        assert!(!report.is_clean());
    }

    #[test]
    fn summary_names_the_path() {
        let mut report = ReadReport::for_path("/tmp/x.cali");
        report.records = 3;
        report.skipped = 1;
        report.truncated = true;
        report.note_error("parse error at line 4: nope");
        let s = report.summary();
        assert!(s.contains("/tmp/x.cali"), "{s}");
        assert!(s.contains("3 records"), "{s}");
        assert!(s.contains("truncated"), "{s}");
        assert!(s.contains("nope"), "{s}");
    }

    #[test]
    fn absorb_accumulates() {
        let mut a = ReadReport {
            records: 2,
            ..Default::default()
        };
        let mut b = ReadReport {
            records: 3,
            skipped: 1,
            dangling_dropped: 4,
            truncated: true,
            ..Default::default()
        };
        b.note_error("x");
        a.absorb(&b);
        assert_eq!(a.records, 5);
        assert_eq!(a.skipped, 1);
        assert_eq!(a.dangling_dropped, 4);
        assert!(a.truncated);
        assert_eq!(a.errors, vec!["x"]);
    }
}
