//! Aligned text-table formatter — renders aggregation results like the
//! `function loop.iteration count sum#time` table in §III-B of the paper.

use caliper_data::{Attribute, FlatRecord, Value};

/// A rendered table with a header row and data rows.
#[derive(Debug, Clone, Default)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
    numeric: Vec<bool>,
}

impl Table {
    /// Create a table with the given column headers.
    pub fn new(headers: Vec<String>) -> Table {
        let n = headers.len();
        Table {
            headers,
            rows: Vec::new(),
            numeric: vec![true; n],
        }
    }

    /// Column headers.
    pub fn headers(&self) -> &[String] {
        &self.headers
    }

    /// Data rows (cell strings).
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    /// Append a row of cells. Missing cells render empty; extra cells are
    /// truncated to the header width.
    pub fn push_row(&mut self, mut cells: Vec<String>) {
        cells.resize(self.headers.len(), String::new());
        for (i, cell) in cells.iter().enumerate() {
            // A column is right-aligned while every non-empty cell in it
            // parses as a number.
            if !cell.is_empty() && cell.parse::<f64>().is_err() {
                self.numeric[i] = false;
            }
        }
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render with space-aligned columns: strings left-aligned, numeric
    /// columns right-aligned.
    pub fn render(&self) -> String {
        self.render_opts(true)
    }

    /// Render, optionally suppressing the header row (`FORMAT
    /// table(noheader)`). Column widths still account for the headers so
    /// output aligns with and without them.
    pub fn render_opts(&self, header: bool) -> String {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(ncols) {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        let mut out = String::new();
        let write_row = |cells: &[String], out: &mut String| {
            for (i, cell) in cells.iter().enumerate().take(ncols) {
                if i > 0 {
                    out.push(' ');
                }
                let pad = widths[i].saturating_sub(cell.chars().count());
                let last = i + 1 == ncols;
                if self.numeric[i] {
                    for _ in 0..pad {
                        out.push(' ');
                    }
                    out.push_str(cell);
                } else {
                    out.push_str(cell);
                    if !last {
                        for _ in 0..pad {
                            out.push(' ');
                        }
                    }
                }
            }
            while out.ends_with(' ') {
                out.pop();
            }
            out.push('\n');
        };
        if header {
            write_row(&self.headers, &mut out);
        }
        for row in &self.rows {
            write_row(row, &mut out);
        }
        out
    }
}

/// Round a float cell to a fixed precision to keep tables readable;
/// integers print without a decimal point.
pub fn format_value(value: &Value) -> String {
    match value {
        Value::Float(f) => {
            if f.fract() == 0.0 && f.abs() < 1e15 {
                format!("{}", *f as i64)
            } else {
                format!("{f:.6}")
            }
        }
        other => other.to_string(),
    }
}

/// Build a table from flat records and a column (attribute) list, in the
/// spirit of `cali-query`'s `format table` output. Missing attributes
/// render as empty cells.
pub fn records_to_table(columns: &[Attribute], records: &[FlatRecord]) -> Table {
    let mut table = Table::new(columns.iter().map(|a| a.name().to_string()).collect());
    for rec in records {
        let cells = columns
            .iter()
            .map(|a| {
                rec.path_string(a.id())
                    .map(|v| format_value(&v))
                    .unwrap_or_default()
            })
            .collect();
        table.push_row(cells);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use caliper_data::{AttributeStore, ValueType};

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(vec!["function".into(), "count".into()]);
        t.push_row(vec!["foo".into(), "2".into()]);
        t.push_row(vec!["barbaz".into(), "40".into()]);
        let out = t.render();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 3);
        // count column is right-aligned
        assert!(lines[1].ends_with(" 2"));
        assert!(lines[2].ends_with("40"));
        // function column is left-aligned
        assert!(lines[1].starts_with("foo "));
    }

    #[test]
    fn short_rows_pad_and_long_rows_truncate() {
        let mut t = Table::new(vec!["a".into(), "b".into()]);
        t.push_row(vec!["1".into()]);
        t.push_row(vec!["1".into(), "2".into(), "3".into()]);
        let out = t.render();
        assert_eq!(out.lines().count(), 3);
        assert!(!out.contains('3'));
    }

    #[test]
    fn render_opts_can_drop_header() {
        let mut t = Table::new(vec!["function".into(), "count".into()]);
        t.push_row(vec!["foo".into(), "2".into()]);
        let with = t.render_opts(true);
        let without = t.render_opts(false);
        assert!(with.starts_with("function"));
        assert!(!without.contains("function"));
        assert_eq!(with.lines().last(), without.lines().last());
    }

    #[test]
    fn format_value_trims_integral_floats() {
        assert_eq!(format_value(&Value::Float(10.0)), "10");
        assert_eq!(format_value(&Value::Float(2.5)), "2.500000");
        assert_eq!(format_value(&Value::Int(-3)), "-3");
        assert_eq!(format_value(&Value::str("x")), "x");
    }

    #[test]
    fn records_to_table_uses_path_strings() {
        let store = AttributeStore::new();
        let func = store.create_simple("function", ValueType::Str);
        let count = store.create_simple("count", ValueType::UInt);
        let mut rec = FlatRecord::new();
        rec.push(func.id(), Value::str("main"));
        rec.push(func.id(), Value::str("foo"));
        rec.push(count.id(), Value::UInt(3));
        let t = records_to_table(&[func, count], &[rec]);
        let out = t.render();
        assert!(out.contains("main/foo"));
        assert!(out.contains('3'));
    }
}
