//! Block-columnar `CALB` v2 codec with zone maps and predicate pushdown.
//!
//! v2 keeps v1's stream model — a `"CALB"` magic plus version byte,
//! dictionary records (attributes, context-tree nodes) interleaved
//! before first use, globals records — but groups snapshot records into
//! length-framed **blocks** (tag `0x05`). Each block carries, before any
//! record data:
//!
//! * per-attribute **zone maps**: presence counts and min/max bounds of
//!   every occurrence in the block, computed over the node-path-expanded
//!   view of each record, so a reader holding a typed WHERE predicate
//!   (see [`crate::pushdown`]) can prove "no record in this block can
//!   match" and skip the whole payload without decoding a single record;
//! * a row **skeleton** (per record: node refs and immediate attribute
//!   ids), followed by per-attribute **value columns** holding the
//!   immediate values in (row, occurrence) order.
//!
//! An optional footer index (tag `0x06`, terminated by a fixed-width
//! length and the `"2BLC"` end magic) lets readers enumerate block
//! offsets from the tail of the file without scanning.
//!
//! The byte-level layout of every structure is specified normatively in
//! **`docs/CALB.md`**; this module doc is a summary. Decoding a v2
//! stream reconstructs exactly the same dataset as the equivalent v1
//! stream, record for record and entry for entry, so query results are
//! byte-identical across encodings. Under [`ReadPolicy::Lenient`], a
//! corrupt block payload is skipped and decoding *resyncs* at the next
//! record (the length frame survives), while a torn length frame or a
//! corrupt dictionary record falls back to v1's valid-prefix semantics.

use std::collections::VecDeque;
use std::io::{self, Write};
use std::path::Path;

use caliper_data::{AttrId, Entry, FxHashMap, FxHashSet, NodeId, Value, ValueType};

use crate::binary::{
    get_value, put_value, put_varint, BinaryDecoder, BinaryWriter, Cursor, MAGIC, TAG_ATTR,
};
use crate::cali::CaliError;
use crate::dataset::Dataset;
use crate::policy::{ReadPolicy, ReadReport};
use crate::pushdown::{AttrStats, Pushdown, ZoneStat};

/// Version byte identifying the block-columnar v2 stream flavor.
pub(crate) const VERSION_V2: u8 = 2;
/// Record tag for a length-framed record block.
pub(crate) const TAG_BLOCK: u8 = 0x05;
/// Record tag for the trailing footer index.
pub(crate) const TAG_FOOTER: u8 = 0x06;
/// Trailing magic closing a footer-bearing v2 stream.
pub(crate) const END_MAGIC: &[u8; 4] = b"2BLC";

/// Default number of snapshot records grouped into one block.
pub const DEFAULT_BLOCK_RECORDS: usize = 1024;

/// Writer knobs for [`to_binary_v2_with`].
#[derive(Debug, Clone)]
pub struct V2WriteOptions {
    /// Snapshot records per block (clamped to at least 1).
    pub block_records: usize,
    /// Whether to append the footer block index.
    pub footer: bool,
}

impl Default for V2WriteOptions {
    fn default() -> V2WriteOptions {
        V2WriteOptions {
            block_records: DEFAULT_BLOCK_RECORDS,
            footer: true,
        }
    }
}

/// One entry of the footer block index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockInfo {
    /// Byte offset of the block's `TAG_BLOCK` byte from stream start.
    pub offset: u64,
    /// Snapshot records stored in the block.
    pub rows: u64,
}

// ---- writer ----

/// Serialize a dataset to the block-columnar v2 format with default
/// options.
pub fn to_binary_v2(ds: &Dataset) -> Vec<u8> {
    to_binary_v2_with(ds, &V2WriteOptions::default())
}

/// Serialize a dataset to the block-columnar v2 format.
pub fn to_binary_v2_with(ds: &Dataset, opts: &V2WriteOptions) -> Vec<u8> {
    let block_records = opts.block_records.max(1);
    let mut w = BinaryWriter::with_version(VERSION_V2);
    for g in &ds.globals {
        w.write_globals(ds, g);
    }
    let mut index: Vec<BlockInfo> = Vec::new();
    let mut path_cache: FxHashMap<NodeId, Vec<(AttrId, Value)>> = FxHashMap::default();
    for chunk in ds.records.chunks(block_records) {
        // Dictionary records first, in exactly the order the v1 writer
        // would emit them for the same record sequence (refs before
        // imms, record by record), so both encodings decode into
        // identical attribute/node creation orders.
        for rec in chunk {
            for entry in rec.entries() {
                if let Entry::Node(id) = entry {
                    w.ensure_node(ds, *id);
                }
            }
            for entry in rec.entries() {
                if let Entry::Imm(attr, _) = entry {
                    w.ensure_attr(ds, *attr);
                }
            }
        }
        let payload = encode_block(ds, chunk, &mut path_cache);
        index.push(BlockInfo {
            offset: w.out.len() as u64,
            rows: chunk.len() as u64,
        });
        w.out.push(TAG_BLOCK);
        put_varint(&mut w.out, payload.len() as u64);
        w.out.extend_from_slice(&payload);
    }
    if opts.footer {
        let footer_start = w.out.len();
        w.out.push(TAG_FOOTER);
        put_varint(&mut w.out, index.len() as u64);
        for info in &index {
            put_varint(&mut w.out, info.offset);
            put_varint(&mut w.out, info.rows);
        }
        let footer_len = (w.out.len() - footer_start) as u32;
        w.out.extend_from_slice(&footer_len.to_le_bytes());
        w.out.extend_from_slice(END_MAGIC);
    }
    w.finish()
}

/// Write a dataset to a v2 binary file (mirrors
/// [`crate::binary::write_file`]).
pub fn write_file_v2(ds: &Dataset, path: impl AsRef<Path>) -> io::Result<()> {
    let bytes = to_binary_v2(ds);
    caliper_data::metrics::global()
        .counter("format.writer.bytes")
        .add(bytes.len() as u64);
    let mut file = std::fs::File::create(path)?;
    file.write_all(&bytes)?;
    file.flush()
}

/// The declared value type the v1/v2 codecs encode an attribute's
/// values with (string fallback matches the v1 writer's behavior for
/// unresolvable attributes).
fn declared_type(ds: &Dataset, attr: AttrId) -> ValueType {
    ds.store
        .get(attr)
        .map(|a| a.value_type())
        .unwrap_or(ValueType::Str)
}

/// Project a value through its attribute's declared type, mirroring the
/// `put_value`/`get_value` round trip — zone bounds must describe the
/// values a reader will actually reconstruct, not the writer-side ones.
fn coerce(vtype: ValueType, value: &Value) -> Value {
    match vtype {
        ValueType::Str => Value::str(value.to_text().as_ref()),
        ValueType::Int => Value::Int(value.to_i64().unwrap_or(0)),
        ValueType::UInt => Value::UInt(value.to_u64().unwrap_or(0)),
        ValueType::Float => Value::Float(value.to_f64().unwrap_or(0.0)),
        ValueType::Bool => Value::Bool(value.is_truthy()),
    }
}

/// Running zone accumulator for one attribute of one block.
struct ZoneAcc {
    present: u64,
    last_row: usize,
    min: Value,
    max: Value,
}

fn encode_block(
    ds: &Dataset,
    chunk: &[caliper_data::SnapshotRecord],
    path_cache: &mut FxHashMap<NodeId, Vec<(AttrId, Value)>>,
) -> Vec<u8> {
    let mut payload = Vec::new();
    put_varint(&mut payload, chunk.len() as u64);

    // Zone maps over the node-path-expanded view of every record, in
    // first-appearance order for deterministic output.
    let mut zone_order: Vec<AttrId> = Vec::new();
    let mut zones: FxHashMap<AttrId, ZoneAcc> = FxHashMap::default();
    let mut observe = |attr: AttrId, value: Value, row: usize| match zones.entry(attr) {
        std::collections::hash_map::Entry::Vacant(slot) => {
            zone_order.push(attr);
            slot.insert(ZoneAcc {
                present: 1,
                last_row: row,
                min: value.clone(),
                max: value,
            });
        }
        std::collections::hash_map::Entry::Occupied(mut slot) => {
            let acc = slot.get_mut();
            if acc.last_row != row {
                acc.present += 1;
                acc.last_row = row;
            }
            if value.total_cmp(&acc.min) == std::cmp::Ordering::Less {
                acc.min = value;
            } else if value.total_cmp(&acc.max) == std::cmp::Ordering::Greater {
                acc.max = value;
            }
        }
    };
    for (row, rec) in chunk.iter().enumerate() {
        for entry in rec.entries() {
            match entry {
                Entry::Node(id) => {
                    let pairs = path_cache
                        .entry(*id)
                        .or_insert_with(|| ds.tree.path(*id));
                    for (attr, value) in pairs.iter() {
                        observe(*attr, coerce(declared_type(ds, *attr), value), row);
                    }
                }
                Entry::Imm(attr, value) => {
                    observe(*attr, coerce(declared_type(ds, *attr), value), row);
                }
            }
        }
    }
    put_varint(&mut payload, zone_order.len() as u64);
    for attr in &zone_order {
        let acc = &zones[attr];
        let vtype = declared_type(ds, *attr);
        put_varint(&mut payload, *attr as u64);
        put_varint(&mut payload, acc.present);
        put_value(&mut payload, vtype, &acc.min);
        put_value(&mut payload, vtype, &acc.max);
    }

    // Row skeletons: refs then immediate attribute ids, per record.
    for rec in chunk {
        let mut refs = 0u64;
        let mut imms = 0u64;
        for entry in rec.entries() {
            match entry {
                Entry::Node(_) => refs += 1,
                Entry::Imm(..) => imms += 1,
            }
        }
        put_varint(&mut payload, refs);
        for entry in rec.entries() {
            if let Entry::Node(id) = entry {
                put_varint(&mut payload, *id as u64);
            }
        }
        put_varint(&mut payload, imms);
        for entry in rec.entries() {
            if let Entry::Imm(attr, _) = entry {
                put_varint(&mut payload, *attr as u64);
            }
        }
    }

    // Value columns: per attribute, the immediate values in (row,
    // occurrence) order, again in first-appearance order.
    let mut col_order: Vec<AttrId> = Vec::new();
    let mut cols: FxHashMap<AttrId, Vec<&Value>> = FxHashMap::default();
    for rec in chunk {
        for entry in rec.entries() {
            if let Entry::Imm(attr, value) = entry {
                cols.entry(*attr)
                    .or_insert_with(|| {
                        col_order.push(*attr);
                        Vec::new()
                    })
                    .push(value);
            }
        }
    }
    put_varint(&mut payload, col_order.len() as u64);
    for attr in &col_order {
        let values = &cols[attr];
        let vtype = declared_type(ds, *attr);
        put_varint(&mut payload, *attr as u64);
        put_varint(&mut payload, values.len() as u64);
        for value in values {
            put_value(&mut payload, vtype, value);
        }
    }
    payload
}

// ---- reader ----

/// Incremental view of the stream dictionary's attribute *names*, used
/// to resolve pushdown predicates (which are keyed by name) to the
/// stream-local ids zone maps are keyed by. Duplicate declarations make
/// a name — or, for re-declared ids, the whole dictionary — ambiguous,
/// in which case the resolver answers [`AttrStats::Unsure`] and no
/// block is ever skipped on that evidence.
#[derive(Default)]
struct NameIndex {
    by_name: FxHashMap<String, Option<u64>>,
    declared_ids: FxHashSet<u64>,
    tainted: bool,
}

impl NameIndex {
    fn declare(&mut self, id: u64, name: &str) {
        if !self.declared_ids.insert(id) {
            self.tainted = true;
        }
        match self.by_name.entry(name.to_string()) {
            std::collections::hash_map::Entry::Vacant(slot) => {
                slot.insert(Some(id));
            }
            std::collections::hash_map::Entry::Occupied(mut slot) => {
                slot.insert(None);
            }
        }
    }
}

/// Re-parse the id and name of a `TAG_ATTR` record without consuming
/// it (the main decode happens in [`BinaryDecoder::read_record`]; this
/// keeps the [`NameIndex`] in sync without widening that API).
fn peek_attr(bytes: &[u8], pos: usize) -> Option<(u64, String)> {
    let mut cursor = Cursor { bytes, pos };
    cursor.u8().ok()?;
    let id = cursor.varint().ok()?;
    let len = cursor.varint().ok()? as usize;
    let name = std::str::from_utf8(cursor.take(len).ok()?).ok()?;
    Some((id, name.to_string()))
}

fn read_block_frame<'a>(cursor: &mut Cursor<'a>) -> Result<&'a [u8], CaliError> {
    cursor.u8()?; // TAG_BLOCK, already peeked
    let len = cursor.varint()? as usize;
    cursor.take(len)
}

/// Validate and skip the trailing footer record (sequential readers do
/// not need its contents; [`read_footer`] serves random access).
fn skip_footer(cursor: &mut Cursor<'_>) -> Result<(), CaliError> {
    let start = cursor.pos;
    cursor.u8()?; // TAG_FOOTER
    let nblocks = cursor.varint()?;
    for _ in 0..nblocks {
        cursor.varint()?; // offset
        cursor.varint()?; // rows
    }
    let record_len = cursor.pos - start;
    let trail = cursor.take(8)?;
    let framed_len = trail[0..4]
        .try_into()
        .map(u32::from_le_bytes)
        .map_err(|_| cursor.err("short footer trailer"))? as usize;
    if framed_len != record_len {
        return Err(cursor.err("footer length mismatch"));
    }
    if &trail[4..8] != END_MAGIC {
        return Err(cursor.err("bad v2 end magic"));
    }
    Ok(())
}

/// Decode one block payload. Returns `Ok(None)` when the pushdown
/// proves no record can match (the caller accounts the skip), otherwise
/// the block's fully reconstructed records. The target dataset is not
/// touched until the whole payload decoded, so a corrupt block never
/// leaves partial records behind.
fn decode_block(
    payload: &mut Cursor<'_>,
    decoder: &BinaryDecoder,
    report: &mut ReadReport,
    pushdown: Option<&Pushdown>,
    names: &NameIndex,
) -> Result<Option<Vec<caliper_data::SnapshotRecord>>, CaliError> {
    let rows = payload.varint()?;

    // Zone maps.
    let nzones = payload.varint()?;
    let mut zones: Vec<(u64, ZoneStat)> = Vec::new();
    for _ in 0..nzones {
        let attr_id = payload.varint()?;
        let present = payload.varint()?;
        if present > rows {
            return Err(payload.err("zone presence count exceeds block rows"));
        }
        let attr = decoder.lookup_attr(payload, attr_id, "zone", report)?;
        let min = get_value(payload, attr.value_type())?;
        let max = get_value(payload, attr.value_type())?;
        zones.push((attr_id, ZoneStat { present, min, max }));
    }

    if let Some(pd) = pushdown {
        let stats = |name: &str| -> AttrStats<'_> {
            if names.tainted {
                return AttrStats::Unsure;
            }
            match names.by_name.get(name) {
                None => AttrStats::Absent,
                Some(None) => AttrStats::Unsure,
                Some(Some(id)) => zones
                    .iter()
                    .find(|(zid, _)| zid == id)
                    .map(|(_, z)| AttrStats::Zone(z))
                    .unwrap_or(AttrStats::Absent),
            }
        };
        if !pd.may_match(rows, stats) {
            return Ok(None);
        }
    }

    // Row skeletons, with node refs resolved through the dictionary.
    let mut skeleton: Vec<(Vec<NodeId>, Vec<u64>)> = Vec::new();
    for _ in 0..rows {
        let nrefs = payload.varint()?;
        let mut refs = Vec::new();
        for _ in 0..nrefs {
            let id = payload.varint()?;
            let local = match decoder.node_map.get(&id) {
                Some(local) => *local,
                None => {
                    report.dangling_dropped += 1;
                    return Err(payload.err(format!("ref to unknown node {id}")));
                }
            };
            refs.push(local);
        }
        let nimm = payload.varint()?;
        let mut imms = Vec::new();
        for _ in 0..nimm {
            imms.push(payload.varint()?);
        }
        skeleton.push((refs, imms));
    }

    // Value columns.
    let ncols = payload.varint()?;
    let mut columns: FxHashMap<u64, VecDeque<Value>> = FxHashMap::default();
    for _ in 0..ncols {
        let attr_id = payload.varint()?;
        let attr = decoder.lookup_attr(payload, attr_id, "column", report)?;
        let nvalues = payload.varint()?;
        let mut values = VecDeque::new();
        for _ in 0..nvalues {
            values.push_back(get_value(payload, attr.value_type())?);
        }
        if columns.insert(attr_id, values).is_some() {
            return Err(payload.err(format!("duplicate value column for attribute {attr_id}")));
        }
    }

    // Reassemble records, draining each column in (row, occurrence)
    // order — the exact inverse of the writer.
    let mut records = Vec::with_capacity(skeleton.len());
    for (refs, imms) in skeleton {
        let mut rec = caliper_data::SnapshotRecord::new();
        for r in refs {
            rec.push_node(r);
        }
        for attr_id in imms {
            let attr = decoder.lookup_attr(payload, attr_id, "imm", report)?;
            let value = columns
                .get_mut(&attr_id)
                .and_then(|q| q.pop_front())
                .ok_or_else(|| payload.err(format!("value column underrun for {attr_id}")))?;
            rec.push_imm(attr.id(), value);
        }
        records.push(rec);
    }
    if columns.values().any(|q| !q.is_empty()) {
        return Err(payload.err("value column overrun"));
    }
    if !payload.at_end() {
        return Err(payload.err("trailing bytes in block payload"));
    }
    Ok(Some(records))
}

/// Fire the `v2.block` failpoint for block `ordinal` of the stream the
/// report is attributed to. Keys on the block ordinal (stable across
/// runs and thread counts), so a `corrupt(...)` or `err(p, seed)` rule
/// damages the *same* blocks no matter who decodes them. Returns an
/// injected decode error, an optionally-corrupted copy of the payload,
/// or `Ok(None)` to decode the original bytes (the armed-faults check
/// is one atomic load, so the hot path stays copy-free).
fn block_fault(
    report: &ReadReport,
    ordinal: u64,
    payload: &[u8],
) -> Result<Option<Vec<u8>>, CaliError> {
    use caliper_faults::sites;
    let Some(faults) = caliper_faults::global() else {
        return Ok(None);
    };
    let label = match &report.path {
        Some(p) => p.to_string_lossy().into_owned(),
        None => String::new(),
    };
    if faults.trigger(sites::V2_BLOCK, ordinal, &label).is_some() {
        return Err(CaliError::Parse {
            line: ordinal as usize,
            message: format!("injected fault at {} (block {ordinal})", sites::V2_BLOCK),
        });
    }
    let mut owned = payload.to_vec();
    if faults.mutate(sites::V2_BLOCK, ordinal, &label, &mut owned) {
        Ok(Some(owned))
    } else {
        Ok(None)
    }
}

/// Parse a v2 stream body (cursor positioned just past the version
/// byte), appending into `ds` under `policy` with optional predicate
/// pushdown. Called from [`crate::binary::read_binary_into_filtered`].
pub(crate) fn read_v2_body(
    mut cursor: Cursor<'_>,
    mut ds: Dataset,
    policy: ReadPolicy,
    report: &mut ReadReport,
    pushdown: Option<&Pushdown>,
) -> Result<Dataset, CaliError> {
    let mut decoder = BinaryDecoder::new();
    let mut names = NameIndex::default();
    let pushdown = pushdown.filter(|pd| !pd.is_empty());
    while !cursor.at_end() {
        let tag = cursor.bytes[cursor.pos];
        match tag {
            TAG_BLOCK => {
                // The length frame is the resync point: if it is torn,
                // nothing after it is addressable (valid-prefix stop);
                // if only the payload is corrupt, skip to the next
                // record boundary and keep going.
                let payload_bytes = match read_block_frame(&mut cursor) {
                    Ok(bytes) => bytes,
                    Err(e) => return lenient_stop(ds, policy, report, e),
                };
                report.blocks += 1;
                let ordinal = report.blocks - 1;
                let decoded = match block_fault(report, ordinal, payload_bytes) {
                    Err(e) => Err(e),
                    Ok(faulted) => {
                        let mut payload = Cursor {
                            bytes: faulted.as_deref().unwrap_or(payload_bytes),
                            pos: 0,
                        };
                        decode_block(&mut payload, &decoder, report, pushdown, &names)
                    }
                };
                match decoded {
                    Ok(Some(records)) => {
                        report.records += records.len() as u64;
                        ds.records.extend(records);
                    }
                    Ok(None) => report.blocks_skipped += 1,
                    Err(e) => {
                        if !policy.is_lenient() {
                            return Err(e);
                        }
                        report.skipped += 1;
                        report.note_error(e.to_string());
                        if report.skipped > policy.max_errors() {
                            return Err(e);
                        }
                        // Resync: the cursor already sits past the
                        // block's length frame.
                    }
                }
            }
            TAG_FOOTER => {
                if let Err(e) = skip_footer(&mut cursor) {
                    return lenient_stop(ds, policy, report, e);
                }
            }
            _ => {
                let pending = if tag == TAG_ATTR {
                    peek_attr(cursor.bytes, cursor.pos)
                } else {
                    None
                };
                match decoder.read_record(&mut cursor, &mut ds, report) {
                    Ok(is_data) => {
                        if let Some((id, name)) = pending {
                            names.declare(id, &name);
                        }
                        if is_data {
                            report.records += 1;
                        }
                    }
                    Err(e) => return lenient_stop(ds, policy, report, e),
                }
            }
        }
    }
    Ok(ds)
}

/// v1-style valid-prefix error handling: keep what decoded, mark the
/// report truncated, fail outright under [`ReadPolicy::Strict`].
fn lenient_stop(
    ds: Dataset,
    policy: ReadPolicy,
    report: &mut ReadReport,
    e: CaliError,
) -> Result<Dataset, CaliError> {
    if !policy.is_lenient() {
        return Err(e);
    }
    report.skipped += 1;
    report.truncated = true;
    report.note_error(e.to_string());
    if report.skipped > policy.max_errors() {
        return Err(e);
    }
    Ok(ds)
}

/// Parse the footer block index from the tail of a v2 stream, if one is
/// present and internally consistent: the end magic and length frame
/// must check out and every offset must point at a `TAG_BLOCK` byte.
/// Returns `None` for v1 streams, footerless v2 streams, and damaged
/// tails (sequential scanning always remains available).
pub fn read_footer(bytes: &[u8]) -> Option<Vec<BlockInfo>> {
    if bytes.len() < 5 + 8 || !bytes.starts_with(MAGIC) || bytes[4] != VERSION_V2 {
        return None;
    }
    if &bytes[bytes.len() - 4..] != END_MAGIC {
        return None;
    }
    let len_at = bytes.len() - 8;
    let framed_len = bytes[len_at..len_at + 4]
        .try_into()
        .map(u32::from_le_bytes)
        .ok()? as usize;
    let footer_start = len_at.checked_sub(framed_len)?;
    if footer_start < 5 || bytes[footer_start] != TAG_FOOTER {
        return None;
    }
    let mut cursor = Cursor {
        bytes: &bytes[footer_start..len_at],
        pos: 0,
    };
    cursor.u8().ok()?;
    let nblocks = cursor.varint().ok()?;
    let mut index = Vec::new();
    for _ in 0..nblocks {
        let offset = cursor.varint().ok()?;
        let rows = cursor.varint().ok()?;
        if offset as usize >= footer_start || bytes[offset as usize] != TAG_BLOCK {
            return None;
        }
        index.push(BlockInfo { offset, rows });
    }
    if !cursor.at_end() {
        return None;
    }
    Some(index)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binary::{from_binary, from_binary_with, read_binary_into_filtered, to_binary};
    use crate::pushdown::{Predicate, PushdownOp};
    use caliper_data::{Properties, SnapshotRecord, NODE_NONE};

    fn sample() -> Dataset {
        let mut ds = Dataset::new();
        let func = ds.attribute("function", ValueType::Str, Properties::NESTED);
        let iter = ds.attribute("iteration", ValueType::Int, Properties::AS_VALUE);
        let dur = ds.attribute(
            "time.duration",
            ValueType::Float,
            Properties::AS_VALUE | Properties::AGGREGATABLE,
        );
        let flag = ds.attribute("flag", ValueType::Bool, Properties::AS_VALUE);
        let count = ds.attribute("n", ValueType::UInt, Properties::AS_VALUE);
        ds.set_global("experiment", "v2-test");
        let main = ds.tree.get_child(NODE_NONE, func.id(), &Value::str("main"));
        let foo = ds.tree.get_child(main, func.id(), &Value::str("foo"));
        for i in 0..50i64 {
            let mut rec = SnapshotRecord::new();
            rec.push_node(if i % 3 == 0 { main } else { foo });
            rec.push_imm(iter.id(), Value::Int(i));
            rec.push_imm(dur.id(), Value::Float(i as f64 * 0.25));
            rec.push_imm(flag.id(), Value::Bool(i % 2 == 0));
            rec.push_imm(count.id(), Value::UInt(i as u64 * 1000));
            ds.push(rec);
        }
        ds
    }

    fn describe_all(ds: &Dataset) -> Vec<String> {
        ds.flat_records().map(|r| r.describe(&ds.store)).collect()
    }

    fn small_blocks() -> V2WriteOptions {
        V2WriteOptions {
            block_records: 8,
            footer: true,
        }
    }

    #[test]
    fn v2_decodes_to_the_same_dataset_as_v1() {
        let ds = sample();
        let v1 = from_binary(&to_binary(&ds)).unwrap();
        let v2 = from_binary(&to_binary_v2_with(&ds, &small_blocks())).unwrap();
        assert_eq!(v2.len(), v1.len());
        assert_eq!(describe_all(&v2), describe_all(&v1));
        assert_eq!(v2.global("experiment"), Some(Value::str("v2-test")));
        // Byte-stable re-encode: both decoded datasets serialize to the
        // exact same v1 (and v2) bytes.
        assert_eq!(to_binary(&v1), to_binary(&v2));
        assert_eq!(to_binary_v2(&v1), to_binary_v2(&v2));
    }

    #[test]
    fn v2_report_counts_blocks() {
        let ds = sample();
        let bytes = to_binary_v2_with(&ds, &small_blocks());
        let (back, report) = from_binary_with(&bytes, ReadPolicy::Strict).unwrap();
        assert_eq!(back.len(), ds.len());
        assert_eq!(report.blocks, 50usize.div_ceil(8) as u64);
        assert_eq!(report.blocks_skipped, 0);
        assert_eq!(report.records, 50 + 1); // snapshots + globals
    }

    #[test]
    fn footer_indexes_every_block() {
        let ds = sample();
        let bytes = to_binary_v2_with(&ds, &small_blocks());
        let index = read_footer(&bytes).unwrap();
        assert_eq!(index.len(), 50usize.div_ceil(8));
        assert_eq!(index.iter().map(|b| b.rows).sum::<u64>(), 50);
        for info in &index {
            assert_eq!(bytes[info.offset as usize], TAG_BLOCK);
        }
        let no_footer = to_binary_v2_with(
            &ds,
            &V2WriteOptions {
                block_records: 8,
                footer: false,
            },
        );
        assert!(read_footer(&no_footer).is_none());
        assert!(read_footer(&to_binary(&ds)).is_none());
        // A footerless stream still decodes fully.
        assert_eq!(from_binary(&no_footer).unwrap().len(), ds.len());
    }

    #[test]
    fn pushdown_skips_blocks_and_keeps_all_matches() {
        let ds = sample();
        let bytes = to_binary_v2_with(&ds, &small_blocks());
        let mut pd = Pushdown::new();
        // iteration >= 40: only the last two 8-record blocks qualify.
        pd.push(Predicate::Cmp {
            attr: "iteration".into(),
            op: PushdownOp::Ge,
            value: Value::Int(40),
        });
        let mut report = ReadReport::default();
        let got = read_binary_into_filtered(
            &bytes,
            Dataset::new(),
            ReadPolicy::Strict,
            &mut report,
            Some(&pd),
        )
        .unwrap();
        assert!(report.blocks_skipped >= 5, "{report:?}");
        assert_eq!(report.blocks, 7);
        // Every record with iteration >= 40 must survive.
        let iter = got.store.find("iteration").unwrap();
        let survivors: Vec<i64> = got
            .records
            .iter()
            .filter_map(|r| {
                r.entries().iter().find_map(|e| match e {
                    Entry::Imm(a, Value::Int(i)) if *a == iter.id() => Some(*i),
                    _ => None,
                })
            })
            .collect();
        for want in 40..50 {
            assert!(survivors.contains(&want), "iteration {want} lost");
        }
    }

    #[test]
    fn pushdown_on_absent_attribute_skips_everything() {
        let ds = sample();
        let bytes = to_binary_v2_with(&ds, &small_blocks());
        let mut pd = Pushdown::new();
        pd.push(Predicate::Exists("no.such.attr".into()));
        let mut report = ReadReport::default();
        let got = read_binary_into_filtered(
            &bytes,
            Dataset::new(),
            ReadPolicy::Strict,
            &mut report,
            Some(&pd),
        )
        .unwrap();
        assert_eq!(got.records.len(), 0);
        assert_eq!(report.blocks_skipped, report.blocks);
        // Globals are not blocks and always survive.
        assert_eq!(got.global("experiment"), Some(Value::str("v2-test")));
    }

    #[test]
    fn truncation_at_every_byte_never_panics() {
        let ds = sample();
        let bytes = to_binary_v2_with(&ds, &small_blocks());
        let full = from_binary(&bytes).unwrap().len();
        let mut last = 0usize;
        for cut in 0..=bytes.len() {
            let _ = from_binary(&bytes[..cut]); // strict must not panic
            if cut >= 5 {
                let (prefix, _report) =
                    from_binary_with(&bytes[..cut], ReadPolicy::lenient()).unwrap();
                assert!(prefix.len() >= last, "cut {cut}");
                last = prefix.len();
            }
        }
        assert_eq!(last, full);
    }

    #[test]
    fn lenient_resyncs_past_a_corrupt_block() {
        let ds = sample();
        let bytes = to_binary_v2_with(&ds, &small_blocks());
        let index = read_footer(&bytes).unwrap();
        // Wreck the first block's payload (row count varint) without
        // touching its length frame.
        let mut corrupt = bytes.clone();
        let mut cursor = Cursor {
            bytes: &bytes,
            pos: index[0].offset as usize,
        };
        cursor.u8().unwrap();
        cursor.varint().unwrap();
        let payload_start = cursor.pos;
        corrupt[payload_start] = 0xff;
        let (back, report) = from_binary_with(&corrupt, ReadPolicy::lenient()).unwrap();
        // Block 0 is lost, every later block survives the resync.
        assert_eq!(back.len(), ds.len() - index[0].rows as usize);
        assert_eq!(report.skipped, 1);
        assert!(!report.truncated, "resync is not truncation: {report:?}");
        assert!(from_binary(&corrupt).is_err(), "strict must fail");
    }

    #[test]
    fn corrupt_dictionary_record_is_a_valid_prefix_stop() {
        let ds = sample();
        let bytes = to_binary_v2_with(&ds, &small_blocks());
        let mut corrupt = bytes.clone();
        corrupt[5] = 0x7f; // first record tag becomes unknown
        let (back, report) = from_binary_with(&corrupt, ReadPolicy::lenient()).unwrap();
        assert_eq!(back.len(), 0);
        assert!(report.truncated);
        assert!(from_binary(&corrupt).is_err());
    }

    #[test]
    fn empty_dataset_roundtrips() {
        let ds = Dataset::new();
        let bytes = to_binary_v2(&ds);
        let back = from_binary(&bytes).unwrap();
        assert_eq!(back.len(), 0);
        assert_eq!(read_footer(&bytes).unwrap().len(), 0);
    }

    #[test]
    fn file_roundtrip_v2() {
        let dir = std::env::temp_dir().join("caliper-binary-v2-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sample.calb");
        let ds = sample();
        write_file_v2(&ds, &path).unwrap();
        let back = crate::binary::read_file(&path).unwrap();
        assert_eq!(back.len(), ds.len());
        std::fs::remove_file(&path).ok();
    }
}
