//! Attribute schema inference — the data-model side of CalQL semantic
//! analysis.
//!
//! A [`Schema`] is a per-attribute name → type/properties table. It can
//! be built from an in-memory [`AttributeStore`], or inferred from
//! `.cali`/CALB streams in a single cheap pre-pass that reads only the
//! attribute-metadata records and *skips* node/snapshot payloads — no
//! context tree is built and no snapshot is decoded, so sniffing the
//! schema of a multi-gigabyte stream costs one sequential scan.
//!
//! Schemas merge across inputs: when the same attribute name appears
//! with different value types in different streams (or through lenient
//! re-declaration), its type degrades to *mixed* (`value_type: None`),
//! which the semantic analyzer treats as "unknown — don't warn".

use std::collections::BTreeMap;
use std::fs::File;
use std::io::{self, BufRead, BufReader, Read};
use std::path::Path;

use caliper_data::{AttributeStore, Properties, ValueType};

use crate::binary::{self, Cursor};
use crate::dataset::Dataset;
use crate::escape::{escape_into, split_fields};

/// Inferred metadata of one attribute name.
#[derive(Debug, Clone, PartialEq)]
pub struct AttrSchema {
    /// The attribute label.
    pub name: String,
    /// Observed value type; `None` when observations conflict (mixed).
    pub value_type: Option<ValueType>,
    /// Union of observed property flags.
    pub properties: Properties,
}

impl AttrSchema {
    /// Type name for display: the `.cali` type name, or `mixed`.
    pub fn type_name(&self) -> &'static str {
        self.value_type.map(ValueType::name).unwrap_or("mixed")
    }

    /// True when the type is *known* to be non-numeric (string/bool).
    /// Mixed or unknown types return false — analysis stays silent
    /// rather than guessing.
    pub fn is_known_non_numeric(&self) -> bool {
        matches!(self.value_type, Some(t) if !t.is_numeric())
    }
}

/// A name → [`AttrSchema`] table, ordered by name for deterministic
/// iteration (diagnostics and saved schema files must be stable).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Schema {
    attrs: BTreeMap<String, AttrSchema>,
}

impl Schema {
    /// Create an empty schema.
    pub fn new() -> Schema {
        Schema::default()
    }

    /// Number of known attributes.
    pub fn len(&self) -> usize {
        self.attrs.len()
    }

    /// True if no attributes are known.
    pub fn is_empty(&self) -> bool {
        self.attrs.is_empty()
    }

    /// Look up an attribute by exact name.
    pub fn get(&self, name: &str) -> Option<&AttrSchema> {
        self.attrs.get(name)
    }

    /// Attribute names in sorted order.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.attrs.keys().map(String::as_str)
    }

    /// Attribute entries in name order.
    pub fn iter(&self) -> impl Iterator<Item = &AttrSchema> {
        self.attrs.values()
    }

    /// Record one observation of `name` with the given type and
    /// properties. Conflicting type observations degrade the entry to
    /// mixed; properties accumulate by union.
    pub fn observe(&mut self, name: &str, vtype: ValueType, props: Properties) {
        match self.attrs.get_mut(name) {
            Some(entry) => {
                if entry.value_type != Some(vtype) {
                    entry.value_type = None;
                }
                entry.properties = entry.properties.union(props);
            }
            None => {
                self.attrs.insert(
                    name.to_string(),
                    AttrSchema {
                        name: name.to_string(),
                        value_type: Some(vtype),
                        properties: props,
                    },
                );
            }
        }
    }

    /// Merge another schema into this one (same conflict rules as
    /// [`observe`](Self::observe); a mixed entry stays mixed).
    pub fn merge(&mut self, other: &Schema) {
        for attr in other.iter() {
            match attr.value_type {
                Some(vtype) => self.observe(&attr.name, vtype, attr.properties),
                None => {
                    // Mixed in the other schema: force mixed here too.
                    let entry = self
                        .attrs
                        .entry(attr.name.clone())
                        .or_insert_with(|| attr.clone());
                    entry.value_type = None;
                    entry.properties = entry.properties.union(attr.properties);
                }
            }
        }
    }

    /// Build a schema from every attribute interned in a store.
    pub fn from_store(store: &AttributeStore) -> Schema {
        let mut schema = Schema::new();
        for attr in store.all() {
            schema.observe(attr.name(), attr.value_type(), attr.properties());
        }
        schema
    }

    /// Build a schema from a dataset's attribute store.
    pub fn from_dataset(ds: &Dataset) -> Schema {
        Schema::from_store(&ds.store)
    }

    /// Infer the schema of a `.cali` file (text or binary CALB,
    /// auto-detected by magic) in one metadata-only pre-pass.
    pub fn infer_path(path: impl AsRef<Path>) -> io::Result<Schema> {
        let mut file = File::open(path)?;
        let mut magic = [0u8; 4];
        let n = read_up_to(&mut file, &mut magic)?;
        if &magic[..n] == binary::MAGIC.as_slice() {
            let mut bytes = magic.to_vec();
            file.read_to_end(&mut bytes)?;
            Ok(Schema::infer_binary(&bytes))
        } else {
            let mut reader = BufReader::new(file);
            let mut schema = Schema::infer_text_bytes(&magic[..n], &mut reader)?;
            // Saved schema files are also text; both record kinds are
            // handled by the same line scanner, so nothing else to do.
            schema.attrs.retain(|_, a| !a.name.is_empty());
            Ok(schema)
        }
    }

    /// Infer a schema from text `.cali` lines: only `__rec=attr` (and
    /// saved-schema `__rec=schema`) records are parsed; every other
    /// line is skipped unexamined. Malformed attribute records are
    /// ignored (lenient — a schema pre-pass must not fail harder than
    /// the real reader).
    pub fn infer_text(reader: impl BufRead) -> io::Result<Schema> {
        let mut schema = Schema::new();
        for line in reader.lines() {
            schema.scan_line(&line?);
        }
        Ok(schema)
    }

    /// Like [`infer_text`](Self::infer_text) but with a few bytes
    /// already consumed by magic sniffing.
    fn infer_text_bytes(prefix: &[u8], reader: &mut impl BufRead) -> io::Result<Schema> {
        let mut rest = Vec::from(prefix);
        reader.read_to_end(&mut rest)?;
        let text = String::from_utf8_lossy(&rest);
        let mut schema = Schema::new();
        for line in text.lines() {
            schema.scan_line(line);
        }
        Ok(schema)
    }

    /// Scan one text line for an attribute-metadata record.
    fn scan_line(&mut self, line: &str) {
        let line = line.trim_end_matches(['\n', '\r']);
        if !(line.starts_with("__rec=attr") || line.starts_with("__rec=schema")) {
            return;
        }
        let mut name = None;
        let mut vtype = None;
        let mut props = Properties::DEFAULT;
        let mut mixed = false;
        for (k, v) in split_fields(line) {
            match k.as_str() {
                "name" => name = Some(v),
                "type" => {
                    if v == "mixed" {
                        mixed = true;
                    } else {
                        vtype = ValueType::from_name(&v);
                    }
                }
                "prop" => props = Properties::parse(&v),
                _ => {}
            }
        }
        let Some(name) = name else { return };
        if name.is_empty() {
            return;
        }
        if mixed {
            // Degrade (or create) the entry as mixed directly.
            let entry = self.attrs.entry(name.clone()).or_insert(AttrSchema {
                name,
                value_type: None,
                properties: props,
            });
            entry.value_type = None;
            entry.properties = entry.properties.union(props);
        } else if let Some(vtype) = vtype {
            self.observe(&name, vtype, props);
        }
    }

    /// Infer a schema from a binary CALB stream by decoding attribute
    /// records and *skipping* node/snapshot payloads. Best-effort: the
    /// scan stops at the first malformed record and returns whatever
    /// was collected up to that point.
    pub fn infer_binary(bytes: &[u8]) -> Schema {
        let mut schema = Schema::new();
        let mut cursor = Cursor { bytes, pos: 0 };
        // Header: magic + version.
        let Ok(magic) = cursor.take(4) else {
            return schema;
        };
        if magic != binary::MAGIC.as_slice() || cursor.u8().is_err() {
            return schema;
        }
        // Per-stream id → type map so value payloads can be skipped.
        let mut types: BTreeMap<u64, ValueType> = BTreeMap::new();
        while !cursor.at_end() {
            if scan_binary_record(&mut cursor, &mut types, &mut schema).is_err() {
                break;
            }
        }
        schema
    }

    /// Render the schema as a text file in the `.cali` line encoding
    /// (`__rec=schema,name=…,type=…,prop=…`), sorted by name.
    pub fn to_text(&self) -> String {
        let mut out = String::from("# caliper attribute schema\n");
        for attr in self.iter() {
            out.push_str("__rec=schema,name=");
            escape_into(&attr.name, &mut out);
            out.push_str(",type=");
            out.push_str(attr.type_name());
            out.push_str(",prop=");
            escape_into(&attr.properties.encode(), &mut out);
            out.push('\n');
        }
        out
    }

    /// Parse a schema from text produced by [`to_text`](Self::to_text)
    /// — or from any text `.cali` stream, whose `__rec=attr` records
    /// carry the same fields.
    pub fn parse_text(text: &str) -> Schema {
        let mut schema = Schema::new();
        for line in text.lines() {
            schema.scan_line(line);
        }
        schema
    }
}

/// Read up to `buf.len()` bytes, tolerating short files.
fn read_up_to(reader: &mut impl Read, buf: &mut [u8]) -> io::Result<usize> {
    let mut filled = 0;
    while filled < buf.len() {
        let n = reader.read(&mut buf[filled..])?;
        if n == 0 {
            break;
        }
        filled += n;
    }
    Ok(filled)
}

/// Skip one encoded value of the given type without decoding it.
fn skip_value(cursor: &mut Cursor<'_>, vtype: ValueType) -> Result<(), crate::cali::CaliError> {
    match vtype {
        ValueType::Str => {
            let len = cursor.varint()? as usize;
            cursor.take(len)?;
        }
        ValueType::Int | ValueType::UInt => {
            cursor.varint()?;
        }
        ValueType::Float => {
            cursor.take(8)?;
        }
        ValueType::Bool => {
            cursor.u8()?;
        }
    }
    Ok(())
}

/// Process one binary record: decode attrs, skip everything else.
fn scan_binary_record(
    cursor: &mut Cursor<'_>,
    types: &mut BTreeMap<u64, ValueType>,
    schema: &mut Schema,
) -> Result<(), crate::cali::CaliError> {
    let value_type_of = |types: &BTreeMap<u64, ValueType>,
                         cursor: &Cursor<'_>,
                         id: u64|
     -> Result<ValueType, crate::cali::CaliError> {
        types
            .get(&id)
            .copied()
            .ok_or_else(|| cursor.err("reference to undeclared attribute"))
    };
    let tag = cursor.u8()?;
    match tag {
        binary::TAG_ATTR => {
            let id = cursor.varint()?;
            let len = cursor.varint()? as usize;
            let name_bytes = cursor.take(len)?;
            let name = std::str::from_utf8(name_bytes)
                .map_err(|_| cursor.err("invalid UTF-8 in attribute name"))?
                .to_string();
            let type_tag = cursor.u8()?;
            let vtype = binary::type_from_tag(type_tag)
                .ok_or_else(|| cursor.err("unknown value type tag"))?;
            let props = Properties::from_bits(cursor.varint()? as u32);
            types.insert(id, vtype);
            if !name.is_empty() {
                schema.observe(&name, vtype, props);
            }
        }
        binary::TAG_NODE => {
            cursor.varint()?; // node id
            let attr = cursor.varint()?;
            cursor.varint()?; // parent + 1
            skip_value(cursor, value_type_of(types, cursor, attr)?)?;
        }
        binary::TAG_CTX => {
            let nrefs = cursor.varint()?;
            for _ in 0..nrefs {
                cursor.varint()?;
            }
            let nimm = cursor.varint()?;
            for _ in 0..nimm {
                let attr = cursor.varint()?;
                skip_value(cursor, value_type_of(types, cursor, attr)?)?;
            }
        }
        binary::TAG_GLOBALS => {
            let nimm = cursor.varint()?;
            for _ in 0..nimm {
                let attr = cursor.varint()?;
                skip_value(cursor, value_type_of(types, cursor, attr)?)?;
            }
        }
        crate::binary_v2::TAG_BLOCK => {
            // v2 record block: length-framed, so the whole payload can
            // be skipped without decoding. Blocks interleave with later
            // dictionary records, so the scan must hop over them rather
            // than stop.
            let len = cursor.varint()? as usize;
            cursor.take(len)?;
        }
        crate::binary_v2::TAG_FOOTER => {
            // v2 footer index: offset/row pairs plus an 8-byte trailer.
            let nblocks = cursor.varint()?;
            for _ in 0..nblocks {
                cursor.varint()?;
                cursor.varint()?;
            }
            cursor.take(8)?;
        }
        _ => return Err(cursor.err("unknown record tag")),
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use caliper_data::{Entry, RecordBuilder, SnapshotRecord};
    use std::sync::Arc;

    fn sample_dataset() -> Dataset {
        let mut ds = Dataset::new();
        let store = Arc::clone(&ds.store);
        store.create("function", ValueType::Str, Properties::NESTED).unwrap();
        store
            .create(
                "time.duration",
                ValueType::Float,
                Properties::AS_VALUE | Properties::AGGREGATABLE,
            )
            .unwrap();
        let rec = RecordBuilder::new(&store)
            .with("function", "main")
            .with("time.duration", 2.5)
            .build();
        let entries = rec
            .pairs()
            .iter()
            .map(|(a, v)| Entry::Imm(*a, v.clone()))
            .collect();
        ds.push(SnapshotRecord::from_entries(entries));
        ds
    }

    #[test]
    fn from_store_collects_all_attributes() {
        let ds = sample_dataset();
        let schema = Schema::from_dataset(&ds);
        assert_eq!(schema.len(), 2);
        let t = schema.get("time.duration").unwrap();
        assert_eq!(t.value_type, Some(ValueType::Float));
        assert!(t.properties.contains(Properties::AGGREGATABLE));
        assert!(schema.get("function").is_some());
        assert!(schema.get("nope").is_none());
    }

    #[test]
    fn conflicting_observations_go_mixed() {
        let mut schema = Schema::new();
        schema.observe("x", ValueType::Int, Properties::DEFAULT);
        schema.observe("x", ValueType::Int, Properties::GLOBAL);
        assert_eq!(schema.get("x").unwrap().value_type, Some(ValueType::Int));
        schema.observe("x", ValueType::Str, Properties::DEFAULT);
        let x = schema.get("x").unwrap();
        assert_eq!(x.value_type, None);
        assert_eq!(x.type_name(), "mixed");
        assert!(x.properties.contains(Properties::GLOBAL));
        // Mixed entries never claim to be non-numeric.
        assert!(!x.is_known_non_numeric());
    }

    #[test]
    fn infer_text_reads_only_attr_records() {
        let text = "\
__rec=attr,id=0,name=function,type=string,prop=nested
__rec=attr,id=1,name=time.duration,type=double,prop=asvalue\\,aggregatable
__rec=node,id=0,attr=0,data=main
garbage line that the pre-pass must skip
__rec=ctx,ref=0,attr=1,data=2.5
";
        let schema = Schema::infer_text(text.as_bytes()).unwrap();
        assert_eq!(schema.len(), 2);
        assert_eq!(
            schema.get("function").unwrap().value_type,
            Some(ValueType::Str)
        );
        assert!(schema
            .get("time.duration")
            .unwrap()
            .properties
            .contains(Properties::AGGREGATABLE));
    }

    #[test]
    fn infer_binary_skips_payloads() {
        let ds = sample_dataset();
        let bytes = crate::binary::to_binary(&ds);
        let schema = Schema::infer_binary(&bytes);
        assert_eq!(schema.len(), 2);
        assert_eq!(
            schema.get("time.duration").unwrap().value_type,
            Some(ValueType::Float)
        );
    }

    #[test]
    fn infer_binary_is_best_effort_on_truncation() {
        let ds = sample_dataset();
        let bytes = crate::binary::to_binary(&ds);
        // Truncating mid-stream keeps whatever attrs were declared
        // before the cut.
        let cut = bytes.len() - 3;
        let schema = Schema::infer_binary(&bytes[..cut]);
        assert!(schema.len() <= 2);
        assert!(Schema::infer_binary(b"nope").is_empty());
        assert!(Schema::infer_binary(b"CA").is_empty());
    }

    #[test]
    fn text_save_load_roundtrip() {
        let ds = sample_dataset();
        let mut schema = Schema::from_dataset(&ds);
        schema.observe("weird,name=x", ValueType::Int, Properties::DEFAULT);
        schema.observe("weird,name=x", ValueType::Str, Properties::DEFAULT); // mixed
        let text = schema.to_text();
        let back = Schema::parse_text(&text);
        assert_eq!(schema, back);
        assert_eq!(back.get("weird,name=x").unwrap().value_type, None);
    }

    #[test]
    fn merge_degrades_conflicts() {
        let mut a = Schema::new();
        a.observe("x", ValueType::Int, Properties::DEFAULT);
        a.observe("y", ValueType::Str, Properties::DEFAULT);
        let mut b = Schema::new();
        b.observe("x", ValueType::Float, Properties::DEFAULT);
        b.observe("z", ValueType::UInt, Properties::DEFAULT);
        a.merge(&b);
        assert_eq!(a.len(), 3);
        assert_eq!(a.get("x").unwrap().value_type, None);
        assert_eq!(a.get("y").unwrap().value_type, Some(ValueType::Str));
        assert_eq!(a.get("z").unwrap().value_type, Some(ValueType::UInt));
    }

    #[test]
    fn infer_path_detects_both_flavors() {
        let dir = std::env::temp_dir().join(format!(
            "caliper-schema-test-{}",
            std::process::id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let ds = sample_dataset();

        let text_path = dir.join("a.cali");
        crate::cali::write_file(&ds, &text_path).unwrap();
        let text_schema = Schema::infer_path(&text_path).unwrap();
        assert_eq!(text_schema.len(), 2);

        let bin_path = dir.join("a.calb");
        std::fs::write(&bin_path, crate::binary::to_binary(&ds)).unwrap();
        let bin_schema = Schema::infer_path(&bin_path).unwrap();
        assert_eq!(text_schema, bin_schema);

        std::fs::remove_dir_all(&dir).ok();
    }
}
