//! CSV output for aggregation results — the format the benchmark
//! harnesses emit so figures can be re-plotted with any tool.

use caliper_data::{Attribute, FlatRecord};

use crate::table::format_value;

/// Quote a CSV field per RFC 4180 when needed.
pub fn csv_field(input: &str) -> String {
    if input.contains([',', '"', '\n', '\r']) {
        let mut out = String::with_capacity(input.len() + 2);
        out.push('"');
        for ch in input.chars() {
            if ch == '"' {
                out.push('"');
            }
            out.push(ch);
        }
        out.push('"');
        out
    } else {
        input.to_string()
    }
}

/// Render records as CSV with one column per attribute in `columns`.
pub fn records_to_csv(columns: &[Attribute], records: &[FlatRecord]) -> String {
    records_to_csv_opts(columns, records, true)
}

/// Render records as CSV, optionally without the header row (`FORMAT
/// csv(noheader)`).
pub fn records_to_csv_opts(
    columns: &[Attribute],
    records: &[FlatRecord],
    header: bool,
) -> String {
    let mut out = String::new();
    if header {
        for (i, col) in columns.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&csv_field(col.name()));
        }
        out.push('\n');
    }
    for rec in records {
        for (i, col) in columns.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            if let Some(v) = rec.path_string(col.id()) {
                out.push_str(&csv_field(&format_value(&v)));
            }
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use caliper_data::{AttributeStore, Value, ValueType};

    #[test]
    fn quoting_rules() {
        assert_eq!(csv_field("plain"), "plain");
        assert_eq!(csv_field("a,b"), "\"a,b\"");
        assert_eq!(csv_field("say \"hi\""), "\"say \"\"hi\"\"\"");
        assert_eq!(csv_field("line\nbreak"), "\"line\nbreak\"");
    }

    #[test]
    fn renders_header_and_rows() {
        let store = AttributeStore::new();
        let k = store.create_simple("kernel", ValueType::Str);
        let n = store.create_simple("count", ValueType::UInt);
        let mut rec = FlatRecord::new();
        rec.push(k.id(), Value::str("advec,cell"));
        rec.push(n.id(), Value::UInt(5));
        let csv = records_to_csv(&[k, n], &[rec]);
        assert_eq!(csv, "kernel,count\n\"advec,cell\",5\n");
    }

    #[test]
    fn noheader_drops_first_line() {
        let store = AttributeStore::new();
        let k = store.create_simple("kernel", ValueType::Str);
        let mut rec = FlatRecord::new();
        rec.push(k.id(), Value::str("advec"));
        let csv = records_to_csv_opts(&[k], &[rec], false);
        assert_eq!(csv, "advec\n");
    }

    #[test]
    fn missing_cells_are_empty() {
        let store = AttributeStore::new();
        let k = store.create_simple("kernel", ValueType::Str);
        let n = store.create_simple("count", ValueType::UInt);
        let mut rec = FlatRecord::new();
        rec.push(n.id(), Value::UInt(5));
        let csv = records_to_csv(&[k, n], &[rec]);
        assert_eq!(csv, "kernel,count\n,5\n");
    }
}
