//! Bounded exponential-backoff retry for transient I/O errors.
//!
//! Transient failures — `EINTR`, timeouts, injected faults from
//! [`caliper_faults`] — are the normal case at scale (see the Recorder
//! tracing paper in PAPERS.md), and aborting a whole aggregation because
//! one `read` hiccuped is the wrong trade. This module gives the format
//! reader and the journal writer one shared, bounded retry discipline:
//!
//! * only [`is_transient`] error kinds are retried — corrupt data,
//!   missing files, and permission errors fail immediately;
//! * backoff doubles from [`RetryPolicy::base_delay`] up to
//!   [`RetryPolicy::max_delay`], so a genuinely stuck resource fails in
//!   bounded time;
//! * a seeded policy ([`RetryPolicy::with_jitter`]) spreads the doubling
//!   schedule with bounded *decorrelated jitter*, so many shards
//!   retrying the same failed file don't stampede it in lock-step —
//!   while staying fully deterministic for a fixed seed (call sites
//!   seed with the hashed path, so a rerun backs off identically);
//! * no sleep is taken after the final attempt — once the budget is
//!   spent the error is returned immediately;
//! * the number of retries taken is reported back so call sites can
//!   publish it (`format.reader.retries`, `runtime.journal.retries`).
//!
//! Injected faults surface as [`std::io::ErrorKind::Interrupted`], so a
//! `CALI_FAULTS="io.read=fail(2)"` spec exercises exactly this loop.

use std::io;
use std::time::Duration;

/// True for error kinds worth retrying: the operation may succeed if
/// simply attempted again.
pub fn is_transient(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::Interrupted | io::ErrorKind::TimedOut | io::ErrorKind::WouldBlock
    )
}

/// A bounded exponential-backoff schedule, optionally jittered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts (first try included). 1 disables retrying.
    pub max_attempts: u32,
    /// Sleep before the first retry; doubles per retry.
    pub base_delay: Duration,
    /// Backoff ceiling.
    pub max_delay: Duration,
    /// Decorrelated-jitter seed. `None` keeps the plain doubling
    /// schedule; `Some(seed)` spreads each sleep pseudo-randomly in
    /// `[base_delay, min(max_delay, 3 × previous))` — deterministically
    /// for a fixed seed (see [`RetryPolicy::delays`]).
    pub jitter_seed: Option<u64>,
}

impl Default for RetryPolicy {
    /// Four attempts with 1 ms / 2 ms / 4 ms backoff — enough to ride
    /// out `EINTR`-class transients without stalling a failed shard for
    /// a human-visible time. No jitter; call sites opt in with
    /// [`RetryPolicy::with_jitter`], seeding from the resource name so
    /// independent shards decorrelate but reruns reproduce exactly.
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 4,
            base_delay: Duration::from_millis(1),
            max_delay: Duration::from_millis(20),
            jitter_seed: None,
        }
    }
}

/// One round of the splitmix64 mixer: a tiny, well-distributed pure
/// function of its input, used to derive the jittered sleep for each
/// (seed, retry) pair without any global random state.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

impl RetryPolicy {
    /// A policy that never retries (strict one-shot semantics).
    pub fn none() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 1,
            ..RetryPolicy::default()
        }
    }

    /// This policy with decorrelated jitter derived from `seed`. Seed
    /// with a stable per-resource value (e.g.
    /// `caliper_faults::stable_hash(path)`): different resources then
    /// back off on decorrelated schedules, while the same resource backs
    /// off identically on every run.
    pub fn with_jitter(mut self, seed: u64) -> RetryPolicy {
        self.jitter_seed = Some(seed);
        self
    }

    /// The exact sleep schedule [`RetryPolicy::run`] uses: one entry per
    /// retry that can be taken, i.e. `max_attempts - 1` entries — there
    /// is never a sleep after the final attempt.
    ///
    /// Without a seed this is the plain capped doubling series
    /// (`base, 2·base, 4·base, …`). With a seed it is the bounded
    /// *decorrelated jitter* series: each sleep is drawn from
    /// `[base_delay, min(max_delay, 3 × previous_sleep))` by a pure hash
    /// of `(seed, retry index)`, so every entry stays within
    /// `[base_delay, max_delay]` and the whole schedule is a
    /// deterministic function of the policy alone.
    pub fn delays(&self) -> Vec<Duration> {
        let retries = self.max_attempts.max(1) - 1;
        let mut out = Vec::with_capacity(retries as usize);
        let base = self.base_delay.min(self.max_delay);
        let mut prev = base;
        for retry in 0..retries {
            let next = match self.jitter_seed {
                None => prev,
                Some(seed) => {
                    let lo = base.as_micros() as u64;
                    let hi = (prev.as_micros() as u64)
                        .saturating_mul(3)
                        .min(self.max_delay.as_micros() as u64);
                    let span = hi.saturating_sub(lo);
                    let pick = if span == 0 {
                        lo
                    } else {
                        lo + splitmix64(seed ^ u64::from(retry).wrapping_mul(0x0123_4567_89ab_cdef))
                            % span
                    };
                    Duration::from_micros(pick)
                }
            };
            out.push(next);
            prev = if self.jitter_seed.is_some() {
                next.max(base)
            } else {
                (prev * 2).min(self.max_delay)
            };
        }
        out
    }

    /// Run `op` under this policy. Retries only [`is_transient`] errors,
    /// sleeping per [`RetryPolicy::delays`] between attempts (never
    /// after the last one). Returns the final result and the number of
    /// retries taken (0 = first try succeeded or failed non-transiently).
    pub fn run<T>(&self, mut op: impl FnMut() -> io::Result<T>) -> (io::Result<T>, u32) {
        let delays = self.delays();
        let mut retries = 0;
        loop {
            match op() {
                Ok(v) => return (Ok(v), retries),
                Err(e) if is_transient(&e) && (retries as usize) < delays.len() => {
                    let delay = delays[retries as usize];
                    if !delay.is_zero() {
                        std::thread::sleep(delay);
                    }
                    retries += 1;
                }
                Err(e) => return (Err(e), retries),
            }
        }
    }
}

/// The `io::Error` used for injected transient faults; recognized by
/// [`is_transient`].
pub fn injected_error(site: &str) -> io::Error {
    io::Error::new(
        io::ErrorKind::Interrupted,
        format!("injected fault at {site}"),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 4,
            base_delay: Duration::ZERO,
            max_delay: Duration::ZERO,
            jitter_seed: None,
        }
    }

    #[test]
    fn retries_transient_until_success() {
        let mut calls = 0;
        let (res, retries) = fast().run(|| {
            calls += 1;
            if calls < 3 {
                Err(injected_error("t"))
            } else {
                Ok(calls)
            }
        });
        assert_eq!(res.unwrap(), 3);
        assert_eq!(retries, 2);
    }

    #[test]
    fn exhausts_after_max_attempts() {
        let mut calls = 0;
        let (res, retries) = fast().run(|| -> io::Result<()> {
            calls += 1;
            Err(injected_error("t"))
        });
        assert!(res.is_err());
        assert_eq!(calls, 4);
        assert_eq!(retries, 3);
    }

    #[test]
    fn non_transient_fails_immediately() {
        let mut calls = 0;
        let (res, retries) = fast().run(|| -> io::Result<()> {
            calls += 1;
            Err(io::Error::new(io::ErrorKind::NotFound, "gone"))
        });
        assert!(res.is_err());
        assert_eq!(calls, 1);
        assert_eq!(retries, 0);
    }

    #[test]
    fn none_policy_is_one_shot() {
        let mut calls = 0;
        let (res, retries) = RetryPolicy::none().run(|| -> io::Result<()> {
            calls += 1;
            Err(injected_error("t"))
        });
        assert!(res.is_err());
        assert_eq!(calls, 1);
        assert_eq!(retries, 0);
    }

    #[test]
    fn unjittered_schedule_is_capped_doubling() {
        let p = RetryPolicy {
            max_attempts: 6,
            base_delay: Duration::from_millis(1),
            max_delay: Duration::from_millis(6),
            jitter_seed: None,
        };
        let ms: Vec<u64> = p.delays().iter().map(|d| d.as_millis() as u64).collect();
        assert_eq!(ms, vec![1, 2, 4, 6, 6]);
    }

    #[test]
    fn schedule_never_sleeps_after_final_attempt() {
        // max_attempts attempts but only max_attempts - 1 sleeps, for
        // jittered and plain policies alike.
        for policy in [RetryPolicy::default(), RetryPolicy::default().with_jitter(7)] {
            assert_eq!(policy.delays().len(), policy.max_attempts as usize - 1);
        }
        assert!(RetryPolicy::none().delays().is_empty());
        assert!(RetryPolicy::none().with_jitter(7).delays().is_empty());
    }

    #[test]
    fn jittered_schedule_is_deterministic_and_bounded() {
        let p = RetryPolicy {
            max_attempts: 8,
            base_delay: Duration::from_millis(1),
            max_delay: Duration::from_millis(20),
            jitter_seed: None,
        };
        let a = p.with_jitter(0xfeed).delays();
        let b = p.with_jitter(0xfeed).delays();
        assert_eq!(a, b, "fixed seed must reproduce the exact schedule");
        for d in &a {
            assert!(*d >= p.base_delay, "jitter below base: {d:?}");
            assert!(*d <= p.max_delay, "jitter above cap: {d:?}");
        }
        // Different seeds decorrelate: at least one sleep differs.
        let c = p.with_jitter(0xbeef).delays();
        assert_ne!(a, c, "distinct seeds should produce distinct schedules");
        // And the jittered schedule is not the lock-step doubling one.
        assert_ne!(a, p.delays());
    }

    #[test]
    fn jittered_run_counts_retries_like_plain() {
        // Zero-delay jittered policy: behavioral parity with `fast()`.
        let p = RetryPolicy {
            max_attempts: 4,
            base_delay: Duration::ZERO,
            max_delay: Duration::ZERO,
            jitter_seed: Some(42),
        };
        let mut calls = 0;
        let (res, retries) = p.run(|| -> io::Result<()> {
            calls += 1;
            Err(injected_error("t"))
        });
        assert!(res.is_err());
        assert_eq!(calls, 4);
        assert_eq!(retries, 3);
    }
}
