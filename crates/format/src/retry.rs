//! Bounded exponential-backoff retry for transient I/O errors.
//!
//! Transient failures — `EINTR`, timeouts, injected faults from
//! [`caliper_faults`] — are the normal case at scale (see the Recorder
//! tracing paper in PAPERS.md), and aborting a whole aggregation because
//! one `read` hiccuped is the wrong trade. This module gives the format
//! reader and the journal writer one shared, bounded retry discipline:
//!
//! * only [`is_transient`] error kinds are retried — corrupt data,
//!   missing files, and permission errors fail immediately;
//! * backoff doubles from [`RetryPolicy::base_delay`] up to
//!   [`RetryPolicy::max_delay`], so a genuinely stuck resource fails in
//!   bounded time;
//! * the number of retries taken is reported back so call sites can
//!   publish it (`format.reader.retries`, `runtime.journal.retries`).
//!
//! Injected faults surface as [`std::io::ErrorKind::Interrupted`], so a
//! `CALI_FAULTS="io.read=fail(2)"` spec exercises exactly this loop.

use std::io;
use std::time::Duration;

/// True for error kinds worth retrying: the operation may succeed if
/// simply attempted again.
pub fn is_transient(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::Interrupted | io::ErrorKind::TimedOut | io::ErrorKind::WouldBlock
    )
}

/// A bounded exponential-backoff schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts (first try included). 1 disables retrying.
    pub max_attempts: u32,
    /// Sleep before the first retry; doubles per retry.
    pub base_delay: Duration,
    /// Backoff ceiling.
    pub max_delay: Duration,
}

impl Default for RetryPolicy {
    /// Four attempts with 1 ms / 2 ms / 4 ms backoff — enough to ride
    /// out `EINTR`-class transients without stalling a failed shard for
    /// a human-visible time.
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 4,
            base_delay: Duration::from_millis(1),
            max_delay: Duration::from_millis(20),
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries (strict one-shot semantics).
    pub fn none() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 1,
            ..RetryPolicy::default()
        }
    }

    /// Run `op` under this policy. Retries only [`is_transient`] errors,
    /// sleeping with doubling backoff between attempts. Returns the
    /// final result and the number of retries taken (0 = first try
    /// succeeded or failed non-transiently).
    pub fn run<T>(&self, mut op: impl FnMut() -> io::Result<T>) -> (io::Result<T>, u32) {
        let mut delay = self.base_delay;
        let mut retries = 0;
        loop {
            match op() {
                Ok(v) => return (Ok(v), retries),
                Err(e) if is_transient(&e) && retries + 1 < self.max_attempts.max(1) => {
                    if !delay.is_zero() {
                        std::thread::sleep(delay);
                    }
                    delay = (delay * 2).min(self.max_delay);
                    retries += 1;
                }
                Err(e) => return (Err(e), retries),
            }
        }
    }
}

/// The `io::Error` used for injected transient faults; recognized by
/// [`is_transient`].
pub fn injected_error(site: &str) -> io::Error {
    io::Error::new(
        io::ErrorKind::Interrupted,
        format!("injected fault at {site}"),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 4,
            base_delay: Duration::ZERO,
            max_delay: Duration::ZERO,
        }
    }

    #[test]
    fn retries_transient_until_success() {
        let mut calls = 0;
        let (res, retries) = fast().run(|| {
            calls += 1;
            if calls < 3 {
                Err(injected_error("t"))
            } else {
                Ok(calls)
            }
        });
        assert_eq!(res.unwrap(), 3);
        assert_eq!(retries, 2);
    }

    #[test]
    fn exhausts_after_max_attempts() {
        let mut calls = 0;
        let (res, retries) = fast().run(|| -> io::Result<()> {
            calls += 1;
            Err(injected_error("t"))
        });
        assert!(res.is_err());
        assert_eq!(calls, 4);
        assert_eq!(retries, 3);
    }

    #[test]
    fn non_transient_fails_immediately() {
        let mut calls = 0;
        let (res, retries) = fast().run(|| -> io::Result<()> {
            calls += 1;
            Err(io::Error::new(io::ErrorKind::NotFound, "gone"))
        });
        assert!(res.is_err());
        assert_eq!(calls, 1);
        assert_eq!(retries, 0);
    }

    #[test]
    fn none_policy_is_one_shot() {
        let mut calls = 0;
        let (res, retries) = RetryPolicy::none().run(|| -> io::Result<()> {
            calls += 1;
            Err(injected_error("t"))
        });
        assert!(res.is_err());
        assert_eq!(calls, 1);
        assert_eq!(retries, 0);
    }
}
