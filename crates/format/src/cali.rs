//! The `.cali` stream codec.
//!
//! A `.cali` stream is a line-oriented encoding of one dataset. It is
//! self-describing: attribute metadata and context-tree nodes are written
//! as records of their own, on first reference, so a reader can rebuild
//! the dictionary and tree incrementally while scanning the stream.
//!
//! Record kinds (the `__rec` field selects the kind):
//!
//! ```text
//! __rec=attr,id=<u32>,name=<esc>,type=<typename>,prop=<propnames>
//! __rec=node,id=<u32>,attr=<u32>,parent=<u32>,data=<esc>     (parent omitted for roots)
//! __rec=ctx[,ref=<u32>]*[,attr=<u32>,data=<esc>]*             (one snapshot)
//! __rec=globals[,ref=<u32>]*[,attr=<u32>,data=<esc>]*         (dataset metadata)
//! ```
//!
//! Immediate values are rendered with [`Value`]'s `Display` and parsed
//! back using the attribute's declared type, so the encoding is
//! type-faithful for int/uint/bool and shortest-roundtrip for floats.

use std::io::{self, BufRead, Write};
use std::path::Path;

use caliper_data::{
    AttrId, Attribute, Entry, FlatRecord, FxHashMap, FxHashSet, NodeId, Properties,
    SnapshotRecord, Value, ValueType, NODE_NONE,
};

use crate::dataset::Dataset;
use crate::escape::{escape_into, split_fields};
use crate::policy::{ReadPolicy, ReadReport};

/// Errors produced by the `.cali` reader.
#[derive(Debug)]
pub enum CaliError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Malformed record with a description and 1-based line number.
    Parse {
        /// 1-based line number of the offending record.
        line: usize,
        /// Human-readable description of the problem.
        message: String,
    },
    /// A failure attributed to a specific input file: wraps the
    /// underlying I/O or parse error with the path, so multi-file tools
    /// can report *which* input was bad.
    File {
        /// Path of the file that failed to read or parse.
        path: std::path::PathBuf,
        /// The underlying failure.
        source: Box<CaliError>,
    },
}

impl CaliError {
    /// Attributes this error to `path` (no-op if it already names a
    /// file, preserving the innermost attribution).
    pub fn with_path(self, path: impl Into<std::path::PathBuf>) -> CaliError {
        match self {
            CaliError::File { .. } => self,
            other => CaliError::File {
                path: path.into(),
                source: Box::new(other),
            },
        }
    }
}

impl std::fmt::Display for CaliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CaliError::Io(e) => write!(f, "i/o error: {e}"),
            CaliError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
            CaliError::File { path, source } => {
                write!(f, "{}: {source}", path.display())
            }
        }
    }
}

impl std::error::Error for CaliError {}

impl From<io::Error> for CaliError {
    fn from(e: io::Error) -> CaliError {
        CaliError::Io(e)
    }
}

/// Streaming `.cali` writer.
///
/// Attribute and node records are emitted lazily, the first time a
/// snapshot references them, so the stream stays compact and can be
/// produced incrementally while the target program runs.
pub struct CaliWriter<W: Write> {
    out: W,
    written_attrs: FxHashSet<AttrId>,
    written_nodes: FxHashSet<NodeId>,
    line: String,
    dangling_drops: u64,
}

impl<W: Write> CaliWriter<W> {
    /// Create a writer over any `io::Write` sink.
    pub fn new(out: W) -> CaliWriter<W> {
        CaliWriter {
            out,
            written_attrs: FxHashSet::default(),
            written_nodes: FxHashSet::default(),
            line: String::with_capacity(256),
            dangling_drops: 0,
        }
    }

    /// Number of attribute/node references that could not be emitted
    /// because the id did not resolve in the dataset's store or tree.
    /// Such references are dropped from the stream (there is no valid
    /// metadata to write for them), but never silently: callers can
    /// check this counter after writing and warn.
    pub fn dangling_drops(&self) -> u64 {
        self.dangling_drops
    }

    fn ensure_attr(&mut self, ds: &Dataset, id: AttrId) -> io::Result<()> {
        if self.written_attrs.contains(&id) {
            return Ok(());
        }
        let attr = match ds.store.get(id) {
            Some(a) => a,
            None => {
                // Dangling id: nothing can be written for it. Count the
                // drop so it is observable instead of silent data loss.
                self.dangling_drops += 1;
                return Ok(());
            }
        };
        self.written_attrs.insert(id);
        self.line.clear();
        self.line.push_str("__rec=attr,id=");
        self.line.push_str(&id.to_string());
        self.line.push_str(",name=");
        escape_into(attr.name(), &mut self.line);
        self.line.push_str(",type=");
        self.line.push_str(attr.value_type().name());
        self.line.push_str(",prop=");
        // The property list is comma-separated and must be escaped.
        escape_into(&attr.properties().encode(), &mut self.line);
        self.line.push('\n');
        self.out.write_all(self.line.as_bytes())
    }

    fn ensure_node(&mut self, ds: &Dataset, id: NodeId) -> io::Result<()> {
        if id == NODE_NONE || self.written_nodes.contains(&id) {
            return Ok(());
        }
        // Parents must appear before children so the reader can rebuild
        // the tree in one pass. Collect the unwritten ancestor chain
        // iteratively — nesting can be arbitrarily deep, so recursion
        // would overflow the stack.
        let mut chain = Vec::new();
        let mut cur = id;
        while cur != NODE_NONE && !self.written_nodes.contains(&cur) {
            let Some(node) = ds.tree.node(cur) else {
                // Dangling id in the ancestor chain: drop the remainder
                // of the chain, counted so callers can surface it.
                self.dangling_drops += 1;
                break;
            };
            let parent = node.parent;
            chain.push((cur, node));
            cur = parent;
        }
        for (id, node) in chain.into_iter().rev() {
            self.ensure_attr(ds, node.attr)?;
            self.written_nodes.insert(id);
            self.line.clear();
            self.line.push_str("__rec=node,id=");
            self.line.push_str(&id.to_string());
            self.line.push_str(",attr=");
            self.line.push_str(&node.attr.to_string());
            if node.parent != NODE_NONE {
                self.line.push_str(",parent=");
                self.line.push_str(&node.parent.to_string());
            }
            self.line.push_str(",data=");
            escape_into(&node.value.to_string(), &mut self.line);
            self.line.push('\n');
            self.out.write_all(self.line.as_bytes())?;
        }
        Ok(())
    }

    fn write_entry_list(
        &mut self,
        ds: &Dataset,
        kind: &str,
        refs: &[NodeId],
        imms: &[(AttrId, Value)],
    ) -> io::Result<()> {
        for &r in refs {
            self.ensure_node(ds, r)?;
        }
        for (a, _) in imms {
            self.ensure_attr(ds, *a)?;
        }
        self.line.clear();
        self.line.push_str("__rec=");
        self.line.push_str(kind);
        for &r in refs {
            if r != NODE_NONE {
                self.line.push_str(",ref=");
                self.line.push_str(&r.to_string());
            }
        }
        for (a, v) in imms {
            self.line.push_str(",attr=");
            self.line.push_str(&a.to_string());
            self.line.push_str(",data=");
            escape_into(&v.to_string(), &mut self.line);
        }
        self.line.push('\n');
        self.out.write_all(self.line.as_bytes())
    }

    /// Write one snapshot record.
    pub fn write_snapshot(&mut self, ds: &Dataset, record: &SnapshotRecord) -> io::Result<()> {
        let mut refs = Vec::new();
        let mut imms = Vec::new();
        for entry in record.entries() {
            match entry {
                Entry::Node(id) => refs.push(*id),
                Entry::Imm(attr, value) => imms.push((*attr, value.clone())),
            }
        }
        self.write_entry_list(ds, "ctx", &refs, &imms)
    }

    /// Write one globals (metadata) record.
    pub fn write_globals(&mut self, ds: &Dataset, record: &FlatRecord) -> io::Result<()> {
        let imms: Vec<_> = record.pairs().to_vec();
        self.write_entry_list(ds, "globals", &[], &imms)
    }

    /// Write a whole dataset: globals first, then all snapshots.
    pub fn write_dataset(&mut self, ds: &Dataset) -> io::Result<()> {
        for g in &ds.globals {
            self.write_globals(ds, g)?;
        }
        for rec in &ds.records {
            self.write_snapshot(ds, rec)?;
        }
        Ok(())
    }

    /// Flush and return the underlying sink.
    pub fn finish(mut self) -> io::Result<W> {
        self.out.flush()?;
        Ok(self.out)
    }

    /// Mutable access to the underlying sink. The journal writer uses
    /// this to drain an in-memory line buffer to its backing file; the
    /// writer's lazy-metadata bookkeeping is unaffected.
    pub fn sink_mut(&mut self) -> &mut W {
        &mut self.out
    }
}

/// Serialize a dataset to a `.cali` byte buffer.
pub fn to_bytes(ds: &Dataset) -> Vec<u8> {
    let mut w = CaliWriter::new(Vec::new());
    w.write_dataset(ds).expect("writing to Vec cannot fail");
    w.finish().expect("flushing Vec cannot fail")
}

/// Write a dataset to a file at `path`.
pub fn write_file(ds: &Dataset, path: impl AsRef<Path>) -> io::Result<()> {
    let bytes = to_bytes(ds);
    caliper_data::metrics::global()
        .counter("format.writer.bytes")
        .add(bytes.len() as u64);
    std::fs::write(path, bytes)
}

/// Incremental `.cali` reader state.
///
/// Ids in the stream are remapped to fresh ids in the reader's own
/// store/tree, so datasets from different processes (whose id spaces
/// overlap) can be merged by reading them into one `CaliReader`.
pub struct CaliReader {
    ds: Dataset,
    attr_map: FxHashMap<u32, Attribute>,
    node_map: FxHashMap<u32, NodeId>,
    line_no: usize,
}

impl CaliReader {
    /// Create a reader building a fresh dataset.
    pub fn new() -> CaliReader {
        CaliReader::into_dataset(Dataset::new())
    }

    /// Create a reader appending into an existing dataset (merging).
    pub fn into_dataset(ds: Dataset) -> CaliReader {
        CaliReader {
            ds,
            attr_map: FxHashMap::default(),
            node_map: FxHashMap::default(),
            line_no: 0,
        }
    }

    fn err(&self, message: impl Into<String>) -> CaliError {
        CaliError::Parse {
            line: self.line_no,
            message: message.into(),
        }
    }

    fn lookup_attr(&self, id: u32, report: &mut ReadReport) -> Result<Attribute, CaliError> {
        match self.attr_map.get(&id) {
            Some(attr) => Ok(attr.clone()),
            None => {
                report.dangling_dropped += 1;
                Err(self.err(format!("reference to undeclared attribute {id}")))
            }
        }
    }

    /// Process one line of the stream (strict: the first malformed
    /// record is an error).
    pub fn read_line(&mut self, line: &str) -> Result<(), CaliError> {
        self.read_line_with(line, ReadPolicy::Strict, &mut ReadReport::default())
    }

    /// Process one line of the stream under `policy`, accounting into
    /// `report`.
    ///
    /// Under [`ReadPolicy::Lenient`] a malformed line is skipped whole —
    /// parsing resynchronizes at the next line, and a failed line never
    /// contributes a partial record — until the policy's skip budget is
    /// exhausted, after which the error is returned like in strict mode.
    pub fn read_line_with(
        &mut self,
        line: &str,
        policy: ReadPolicy,
        report: &mut ReadReport,
    ) -> Result<(), CaliError> {
        self.line_no += 1;
        let line = line.trim_end_matches(['\n', '\r']);
        if line.is_empty() || line.starts_with('#') {
            return Ok(());
        }
        match self.parse_record(line, report) {
            Ok(is_data) => {
                if is_data {
                    report.records += 1;
                }
                Ok(())
            }
            Err(e) => self.skip_or_fail(e, policy, report),
        }
    }

    /// Parse one non-empty record line; `Ok(true)` for data records
    /// (ctx/globals), `Ok(false)` for metadata (attr/node).
    ///
    /// All parsers mutate reader state only after the whole line has
    /// validated, so a failed line leaves the dataset untouched and a
    /// lenient skip is exact.
    fn parse_record(&mut self, line: &str, report: &mut ReadReport) -> Result<bool, CaliError> {
        let fields = split_fields(line);
        let kind = fields
            .iter()
            .find(|(k, _)| k == "__rec")
            .map(|(_, v)| v.as_str())
            .ok_or_else(|| self.err("missing __rec field"))?;
        match kind {
            "attr" => self.read_attr(&fields).map(|()| false),
            "node" => self.read_node(&fields, report).map(|()| false),
            "ctx" => self.read_entry_list(&fields, false, report).map(|()| true),
            "globals" => self.read_entry_list(&fields, true, report).map(|()| true),
            other => Err(self.err(format!("unknown record kind '{other}'"))),
        }
    }

    /// Lenient-mode error disposition: count the skip and carry on while
    /// the budget lasts; propagate the error otherwise.
    fn skip_or_fail(
        &mut self,
        e: CaliError,
        policy: ReadPolicy,
        report: &mut ReadReport,
    ) -> Result<(), CaliError> {
        if !policy.is_lenient() {
            return Err(e);
        }
        report.skipped += 1;
        report.note_error(e.to_string());
        if report.skipped > policy.max_errors() {
            Err(e)
        } else {
            Ok(())
        }
    }

    fn read_attr(&mut self, fields: &[(String, String)]) -> Result<(), CaliError> {
        let mut id = None;
        let mut name = None;
        let mut vtype = None;
        let mut props = Properties::DEFAULT;
        for (k, v) in fields {
            match k.as_str() {
                "id" => id = v.parse::<u32>().ok(),
                "name" => name = Some(v.clone()),
                "type" => vtype = ValueType::from_name(v),
                "prop" => props = Properties::parse(v),
                _ => {}
            }
        }
        let id = id.ok_or_else(|| self.err("attr record without valid id"))?;
        let name = name.ok_or_else(|| self.err("attr record without name"))?;
        let vtype = vtype.ok_or_else(|| self.err("attr record without valid type"))?;
        let attr = self
            .ds
            .store
            .create(&name, vtype, props)
            .map_err(|e| self.err(e.to_string()))?;
        self.attr_map.insert(id, attr);
        Ok(())
    }

    fn read_node(
        &mut self,
        fields: &[(String, String)],
        report: &mut ReadReport,
    ) -> Result<(), CaliError> {
        let mut id = None;
        let mut attr = None;
        let mut parent = None;
        let mut data = None;
        for (k, v) in fields {
            match k.as_str() {
                "id" => id = v.parse::<u32>().ok(),
                "attr" => attr = v.parse::<u32>().ok(),
                "parent" => parent = v.parse::<u32>().ok(),
                "data" => data = Some(v.clone()),
                _ => {}
            }
        }
        let id = id.ok_or_else(|| self.err("node record without valid id"))?;
        let attr_id = attr.ok_or_else(|| self.err("node record without attr"))?;
        let data = data.ok_or_else(|| self.err("node record without data"))?;
        let attr = self.lookup_attr(attr_id, report)?;
        let value = Value::parse_typed(&data, attr.value_type())
            .ok_or_else(|| self.err(format!("cannot parse '{data}' as {}", attr.value_type())))?;
        let parent_local = match parent {
            Some(p) => match self.node_map.get(&p) {
                Some(local) => *local,
                None => {
                    report.dangling_dropped += 1;
                    return Err(self.err(format!("node {id} references unknown parent {p}")));
                }
            },
            None => NODE_NONE,
        };
        let local = self.ds.tree.get_child(parent_local, attr.id(), &value);
        self.node_map.insert(id, local);
        Ok(())
    }

    fn read_entry_list(
        &mut self,
        fields: &[(String, String)],
        globals: bool,
        report: &mut ReadReport,
    ) -> Result<(), CaliError> {
        let mut record = SnapshotRecord::new();
        let mut flat = FlatRecord::new();
        let mut pending_attr: Option<Attribute> = None;
        for (k, v) in fields {
            match k.as_str() {
                "ref" => {
                    let id: u32 = v
                        .parse()
                        .map_err(|_| self.err(format!("invalid node ref '{v}'")))?;
                    let local = match self.node_map.get(&id) {
                        Some(local) => *local,
                        None => {
                            report.dangling_dropped += 1;
                            return Err(self.err(format!("ref to unknown node {id}")));
                        }
                    };
                    record.push_node(local);
                }
                "attr" => {
                    let id: u32 = v
                        .parse()
                        .map_err(|_| self.err(format!("invalid attr id '{v}'")))?;
                    pending_attr = Some(self.lookup_attr(id, report)?);
                }
                "data" => {
                    let attr = pending_attr
                        .take()
                        .ok_or_else(|| self.err("data field without preceding attr"))?;
                    let value = Value::parse_typed(v, attr.value_type()).ok_or_else(|| {
                        self.err(format!("cannot parse '{v}' as {}", attr.value_type()))
                    })?;
                    if globals {
                        flat.push(attr.id(), value);
                    } else {
                        record.push_imm(attr.id(), value);
                    }
                }
                _ => {}
            }
        }
        if globals {
            self.ds.globals.push(flat);
        } else {
            self.ds.records.push(record);
        }
        Ok(())
    }

    /// Consume a whole `BufRead` stream (strict).
    pub fn read_stream(&mut self, reader: impl BufRead) -> Result<(), CaliError> {
        self.read_stream_with(reader, ReadPolicy::Strict, &mut ReadReport::default())
    }

    /// Consume a whole `BufRead` stream under `policy`, accounting into
    /// `report`.
    ///
    /// Lines are read as raw bytes and validated as UTF-8 individually,
    /// so under [`ReadPolicy::Lenient`] a line of binary garbage is one
    /// skipped record rather than the end of the read, and an I/O error
    /// mid-stream (truncation) keeps the decoded prefix and marks the
    /// report truncated.
    pub fn read_stream_with(
        &mut self,
        reader: impl BufRead,
        policy: ReadPolicy,
        report: &mut ReadReport,
    ) -> Result<(), CaliError> {
        self.read_stream_cancellable(reader, policy, report, None)
    }

    /// [`read_stream_with`](Self::read_stream_with) under a cooperative
    /// [`Deadline`](caliper_data::Deadline): the deadline is polled
    /// every 256 lines, and on expiry the read stops where it stands —
    /// the decoded prefix is kept, the report is marked truncated with
    /// a `read cancelled` note, and `Ok` is returned (expiry is a
    /// *budget* outcome, not a parse failure, under either policy).
    /// Resident services use this to bound journal replay at startup so
    /// a huge or slow journal degrades the stream instead of wedging
    /// readiness forever.
    pub fn read_stream_cancellable(
        &mut self,
        mut reader: impl BufRead,
        policy: ReadPolicy,
        report: &mut ReadReport,
        deadline: Option<&caliper_data::Deadline>,
    ) -> Result<(), CaliError> {
        let mut buf = Vec::new();
        let mut lines: u64 = 0;
        loop {
            if let Some(d) = deadline {
                if lines.is_multiple_of(256) && d.expired() {
                    report.truncated = true;
                    report.note_error(format!(
                        "read cancelled by deadline after line {}",
                        self.line_no
                    ));
                    return Ok(());
                }
            }
            lines += 1;
            buf.clear();
            let n = match reader.read_until(b'\n', &mut buf) {
                Ok(n) => n,
                Err(e) => {
                    if policy.is_lenient() {
                        report.truncated = true;
                        report.note_error(format!("i/o error after line {}: {e}", self.line_no));
                        return Ok(());
                    }
                    return Err(CaliError::Io(e));
                }
            };
            if n == 0 {
                return Ok(());
            }
            match std::str::from_utf8(&buf) {
                Ok(s) => self.read_line_with(s, policy, report)?,
                Err(_) => {
                    self.line_no += 1;
                    let e = self.err("invalid UTF-8 in line");
                    self.skip_or_fail(e, policy, report)?;
                }
            }
        }
    }

    /// Finish reading and return the dataset.
    pub fn finish(self) -> Dataset {
        self.ds
    }
}

impl Default for CaliReader {
    fn default() -> CaliReader {
        CaliReader::new()
    }
}

/// Parse a `.cali` byte buffer into a dataset.
pub fn from_bytes(bytes: &[u8]) -> Result<Dataset, CaliError> {
    let mut reader = CaliReader::new();
    reader.read_stream(io::BufReader::new(bytes))?;
    Ok(reader.finish())
}

/// Parse a `.cali` byte buffer under `policy`, returning the dataset
/// together with the read report.
pub fn from_bytes_with(bytes: &[u8], policy: ReadPolicy) -> Result<(Dataset, ReadReport), CaliError> {
    let mut report = ReadReport::default();
    let mut reader = CaliReader::new();
    reader.read_stream_with(io::BufReader::new(bytes), policy, &mut report)?;
    Ok((reader.finish(), report))
}

/// Read a `.cali` file into a dataset.
pub fn read_file(path: impl AsRef<Path>) -> Result<Dataset, CaliError> {
    let file = std::fs::File::open(path)?;
    let mut reader = CaliReader::new();
    reader.read_stream(io::BufReader::new(file))?;
    Ok(reader.finish())
}

#[cfg(test)]
mod tests {
    use super::*;
    use caliper_data::Properties;

    fn sample_dataset() -> Dataset {
        let mut ds = Dataset::new();
        let func = ds.attribute("function", ValueType::Str, Properties::NESTED);
        let iter = ds.attribute("loop.iteration", ValueType::Int, Properties::AS_VALUE);
        let dur = ds.attribute(
            "time.duration",
            ValueType::Float,
            Properties::AS_VALUE | Properties::AGGREGATABLE,
        );
        ds.set_global("experiment", "unit-test");

        let main = ds.tree.get_child(NODE_NONE, func.id(), &Value::str("main"));
        let foo = ds.tree.get_child(main, func.id(), &Value::str("foo"));
        for i in 0..4 {
            let mut rec = SnapshotRecord::new();
            rec.push_node(if i % 2 == 0 { foo } else { main });
            rec.push_imm(iter.id(), Value::Int(i));
            rec.push_imm(dur.id(), Value::Float(10.0 * (i as f64 + 1.0)));
            ds.push(rec);
        }
        ds
    }

    #[test]
    fn roundtrip_preserves_flat_records() {
        let ds = sample_dataset();
        let bytes = to_bytes(&ds);
        let ds2 = from_bytes(&bytes).unwrap();

        assert_eq!(ds2.len(), ds.len());
        let orig: Vec<String> = ds.flat_records().map(|r| r.describe(&ds.store)).collect();
        let read: Vec<String> = ds2
            .flat_records()
            .map(|r| r.describe(&ds2.store))
            .collect();
        assert_eq!(orig, read);
        assert_eq!(ds2.global("experiment"), Some(Value::str("unit-test")));
    }

    #[test]
    fn attributes_keep_types_and_properties() {
        let ds2 = from_bytes(&to_bytes(&sample_dataset())).unwrap();
        let dur = ds2.store.find("time.duration").unwrap();
        assert_eq!(dur.value_type(), ValueType::Float);
        assert!(dur.is_aggregatable());
        assert!(dur.is_as_value());
        let func = ds2.store.find("function").unwrap();
        assert!(func.is_nested());
    }

    #[test]
    fn lazy_metadata_written_once() {
        let bytes = to_bytes(&sample_dataset());
        let text = String::from_utf8(bytes).unwrap();
        let attr_lines = text
            .lines()
            .filter(|l| l.starts_with("__rec=attr"))
            .count();
        let node_lines = text
            .lines()
            .filter(|l| l.starts_with("__rec=node"))
            .count();
        // 4 attributes (incl. global 'experiment'), 2 nodes, each once.
        assert_eq!(attr_lines, 4);
        assert_eq!(node_lines, 2);
    }

    #[test]
    fn merging_two_streams_shares_dictionary() {
        let ds = sample_dataset();
        let bytes = to_bytes(&ds);
        let mut reader = CaliReader::new();
        reader.read_stream(io::BufReader::new(&bytes[..])).unwrap();
        // Re-read the same stream: remapping must tolerate overlapping ids.
        let mut reader = CaliReader::into_dataset(reader.finish());
        reader.read_stream(io::BufReader::new(&bytes[..])).unwrap();
        let merged = reader.finish();
        assert_eq!(merged.len(), 2 * ds.len());
        assert_eq!(merged.store.len(), ds.store.len());
        assert_eq!(merged.tree.len(), ds.tree.len());
    }

    #[test]
    fn special_characters_roundtrip() {
        let mut ds = Dataset::new();
        let ann = ds.attribute("annotation", ValueType::Str, Properties::NESTED);
        let nasty = "a,b=c\\d\ne";
        let node = ds.tree.get_child(NODE_NONE, ann.id(), &Value::str(nasty));
        let mut rec = SnapshotRecord::new();
        rec.push_node(node);
        ds.push(rec);

        let ds2 = from_bytes(&to_bytes(&ds)).unwrap();
        let flat: Vec<_> = ds2.flat_records().collect();
        let ann2 = ds2.store.find("annotation").unwrap();
        assert_eq!(flat[0].get(ann2.id()), Some(&Value::str(nasty)));
    }

    #[test]
    fn malformed_lines_are_reported_with_line_numbers() {
        let mut reader = CaliReader::new();
        reader.read_line("__rec=attr,id=0,name=x,type=int,prop=default").unwrap();
        let err = reader.read_line("__rec=node,id=0,attr=99,data=1").unwrap_err();
        match err {
            CaliError::Parse { line, message } => {
                assert_eq!(line, 2);
                assert!(message.contains("undeclared attribute"));
            }
            other => panic!("unexpected error: {other}"),
        }
        assert!(reader.read_line("no record kind here").is_err());
        assert!(reader.read_line("# comment").is_ok());
        assert!(reader.read_line("").is_ok());
    }

    #[test]
    fn lenient_skips_corrupt_lines_and_resynchronizes() {
        let ds = sample_dataset();
        let text = String::from_utf8(to_bytes(&ds)).unwrap();
        let clean_lines: Vec<&str> = text.lines().collect();
        // Splice garbage between valid records: each bad line must be
        // skipped whole and parsing must resume on the next line.
        let mut spliced = Vec::new();
        for (i, line) in clean_lines.iter().enumerate() {
            spliced.push(line.to_string());
            if i == 2 {
                spliced.push("total garbage, no record kind".to_string());
                spliced.push("__rec=ctx,ref=9999".to_string());
            }
        }
        let bytes = spliced.join("\n").into_bytes();
        let (lenient, report) = from_bytes_with(&bytes, ReadPolicy::lenient()).unwrap();
        assert_eq!(report.skipped, 2);
        assert_eq!(report.dangling_dropped, 1);
        assert!(!report.truncated);
        assert_eq!(lenient.len(), ds.len());
        let orig: Vec<String> = ds.flat_records().map(|r| r.describe(&ds.store)).collect();
        let read: Vec<String> = lenient
            .flat_records()
            .map(|r| r.describe(&lenient.store))
            .collect();
        assert_eq!(orig, read);
        // The same stream under strict mode fails.
        assert!(from_bytes(&bytes).is_err());
    }

    #[test]
    fn lenient_skip_budget_is_enforced() {
        let mut bytes = Vec::new();
        for _ in 0..5 {
            bytes.extend_from_slice(b"not a record\n");
        }
        assert!(from_bytes_with(&bytes, ReadPolicy::Lenient { max_errors: 3 }).is_err());
        let (_, report) = from_bytes_with(&bytes, ReadPolicy::Lenient { max_errors: 5 }).unwrap();
        assert_eq!(report.skipped, 5);
    }

    #[test]
    fn lenient_tolerates_invalid_utf8_lines() {
        let ds = sample_dataset();
        let mut bytes = to_bytes(&ds);
        bytes.extend_from_slice(b"\xff\xfe binary garbage \x80\n");
        let (lenient, report) = from_bytes_with(&bytes, ReadPolicy::lenient()).unwrap();
        assert_eq!(lenient.len(), ds.len());
        assert_eq!(report.skipped, 1);
        assert!(report.errors[0].contains("UTF-8"));
        // Strict mode reports the bad line as a parse error.
        assert!(from_bytes(&bytes).is_err());
    }

    #[test]
    fn writer_counts_dangling_ids() {
        let ds = sample_dataset();
        let mut rec = SnapshotRecord::new();
        rec.push_node(9999); // never created in ds.tree
        rec.push_imm(4242, Value::Int(1)); // no such attribute
        let mut with_dangling = sample_dataset();
        with_dangling.push(rec);

        let mut w = CaliWriter::new(Vec::new());
        w.write_dataset(&with_dangling).unwrap();
        assert_eq!(w.dangling_drops(), 2);
        let bytes = w.finish().unwrap();

        let mut w2 = CaliWriter::new(Vec::new());
        w2.write_dataset(&ds).unwrap();
        assert_eq!(w2.dangling_drops(), 0);

        // The emitted stream still reads back; the dangling entries
        // surface as dangling refs on the reader side.
        let (ds2, report) = from_bytes_with(&bytes, ReadPolicy::lenient()).unwrap();
        assert_eq!(ds2.len(), ds.len());
        assert_eq!(report.skipped, 1);
        assert!(report.dangling_dropped >= 1);
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("caliper-format-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sample.cali");
        let ds = sample_dataset();
        write_file(&ds, &path).unwrap();
        let ds2 = read_file(&path).unwrap();
        assert_eq!(ds2.len(), ds.len());
        std::fs::remove_file(&path).ok();
    }
}
