//! In-memory dataset: the unit of off-line processing.
//!
//! A dataset corresponds to one `.cali` file — typically the output of
//! one process (or thread) of a monitored program: an attribute
//! dictionary, a context tree, dataset-global metadata records, and a
//! sequence of snapshot records.

use std::sync::Arc;

use caliper_data::{
    AttributeStore, ContextTree, FlatRecord, Properties, SnapshotRecord, Value, ValueType,
};

/// An in-memory performance dataset.
#[derive(Clone)]
pub struct Dataset {
    /// Attribute dictionary for all records in this dataset.
    pub store: Arc<AttributeStore>,
    /// Context tree referenced by the snapshot records.
    pub tree: Arc<ContextTree>,
    /// Dataset-wide metadata (e.g. `experiment`, `mpi.world.size`).
    pub globals: Vec<FlatRecord>,
    /// The snapshot records, in stream order.
    pub records: Vec<SnapshotRecord>,
}

impl Dataset {
    /// Create an empty dataset with fresh store and tree.
    pub fn new() -> Dataset {
        Dataset {
            store: Arc::new(AttributeStore::new()),
            tree: Arc::new(ContextTree::new()),
            globals: Vec::new(),
            records: Vec::new(),
        }
    }

    /// Create a dataset sharing an existing store and tree (e.g. the
    /// runtime's own, when flushing in-process).
    pub fn with_context(store: Arc<AttributeStore>, tree: Arc<ContextTree>) -> Dataset {
        Dataset {
            store,
            tree,
            globals: Vec::new(),
            records: Vec::new(),
        }
    }

    /// Append a snapshot record.
    pub fn push(&mut self, record: SnapshotRecord) {
        self.records.push(record);
    }

    /// Append a global (metadata) record.
    pub fn push_global(&mut self, record: FlatRecord) {
        self.globals.push(record);
    }

    /// Add a single `label=value` global, interning the label with
    /// `GLOBAL` property.
    pub fn set_global(&mut self, label: &str, value: impl Into<Value>) {
        let value = value.into();
        let attr = match self.store.create(label, value.value_type(), Properties::GLOBAL) {
            Ok(a) => a,
            // Type conflict: the label exists with another type; keep it.
            Err(_) => self.store.find(label).expect("conflict implies existence"),
        };
        let mut rec = FlatRecord::new();
        rec.push(attr.id(), value);
        self.globals.push(rec);
    }

    /// Look up a global value by label (last writer wins).
    pub fn global(&self, label: &str) -> Option<Value> {
        let attr = self.store.find(label)?;
        self.globals
            .iter()
            .rev()
            .find_map(|r| r.get(attr.id()).cloned())
    }

    /// Number of snapshot records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True if there are no snapshot records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Iterate the snapshot records expanded to flat records.
    pub fn flat_records(&self) -> impl Iterator<Item = FlatRecord> + '_ {
        self.records.iter().map(|r| r.unpack(&self.tree))
    }

    /// Convenience: intern an attribute in this dataset's store.
    pub fn attribute(&self, name: &str, vtype: ValueType, props: Properties) -> caliper_data::Attribute {
        self.store
            .create(name, vtype, props)
            .expect("attribute type conflict")
    }
}

impl Default for Dataset {
    fn default() -> Dataset {
        Dataset::new()
    }
}

impl std::fmt::Debug for Dataset {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Dataset({} records, {} globals, {} attrs, {} nodes)",
            self.records.len(),
            self.globals.len(),
            self.store.len(),
            self.tree.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use caliper_data::NODE_NONE;

    #[test]
    fn globals_last_writer_wins() {
        let mut ds = Dataset::new();
        ds.set_global("mpi.world.size", 4u64);
        ds.set_global("mpi.world.size", 8u64);
        assert_eq!(ds.global("mpi.world.size"), Some(Value::UInt(8)));
        assert_eq!(ds.global("missing"), None);
    }

    #[test]
    fn flat_records_expand_against_tree() {
        let ds = {
            let mut ds = Dataset::new();
            let func = ds.attribute("function", ValueType::Str, Properties::NESTED);
            let node = ds.tree.get_child(NODE_NONE, func.id(), &Value::str("main"));
            let mut rec = SnapshotRecord::new();
            rec.push_node(node);
            ds.push(rec);
            ds
        };
        let flats: Vec<_> = ds.flat_records().collect();
        assert_eq!(flats.len(), 1);
        let func = ds.store.find("function").unwrap();
        assert_eq!(flats[0].get(func.id()), Some(&Value::str("main")));
    }
}
