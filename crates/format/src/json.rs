//! Hand-rolled JSON encoder for record lists.
//!
//! Emits an array of objects, one per record, with attribute labels as
//! keys. Implemented in-repo (rather than via serde_json) to keep the
//! dependency closure small; the subset of JSON we need — objects of
//! string/number/bool values — is tiny.

use caliper_data::{AttributeStore, FlatRecord, Value};

/// Escape a string per RFC 8259.
pub fn escape_json(input: &str) -> String {
    let mut out = String::with_capacity(input.len() + 2);
    for ch in input.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Encode one value as a JSON literal. Non-finite floats become `null`
/// (JSON has no NaN/Inf).
pub fn value_to_json(value: &Value) -> String {
    match value {
        Value::Str(s) => format!("\"{}\"", escape_json(s)),
        Value::Int(i) => i.to_string(),
        Value::UInt(u) => u.to_string(),
        Value::Float(f) if f.is_finite() => {
            // Ensure the output re-parses as a float, not an int.
            if f.fract() == 0.0 && f.abs() < 1e15 {
                format!("{f:.1}")
            } else {
                f.to_string()
            }
        }
        Value::Float(_) => "null".to_string(),
        Value::Bool(b) => b.to_string(),
    }
}

/// Encode one record as a JSON object. Repeated (nested) attributes are
/// joined into their path string, matching the table formatter.
pub fn record_to_json(store: &AttributeStore, record: &FlatRecord) -> String {
    let mut out = String::from("{");
    let mut seen = Vec::new();
    let mut first = true;
    for (attr, _) in record.pairs() {
        if seen.contains(attr) {
            continue;
        }
        seen.push(*attr);
        let name = match store.name_of(*attr) {
            Some(n) => n,
            None => continue,
        };
        let value = record
            .path_string(*attr)
            .expect("attribute present by construction");
        if !first {
            out.push(',');
        }
        first = false;
        out.push('"');
        out.push_str(&escape_json(&name));
        out.push_str("\":");
        out.push_str(&value_to_json(&value));
    }
    out.push('}');
    out
}

/// Encode a record list as a JSON array of objects (pretty: one record
/// per line).
pub fn records_to_json(store: &AttributeStore, records: &[FlatRecord]) -> String {
    let mut out = String::from("[\n");
    for (i, rec) in records.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        out.push_str(&record_to_json(store, rec));
    }
    out.push_str("\n]\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use caliper_data::ValueType;

    #[test]
    fn escapes_special_characters() {
        assert_eq!(escape_json("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape_json("\u{1}"), "\\u0001");
    }

    #[test]
    fn values_encode_per_type() {
        assert_eq!(value_to_json(&Value::Int(-3)), "-3");
        assert_eq!(value_to_json(&Value::UInt(3)), "3");
        assert_eq!(value_to_json(&Value::Float(1.5)), "1.5");
        assert_eq!(value_to_json(&Value::Float(2.0)), "2.0");
        assert_eq!(value_to_json(&Value::Float(f64::NAN)), "null");
        assert_eq!(value_to_json(&Value::Bool(true)), "true");
        assert_eq!(value_to_json(&Value::str("x")), "\"x\"");
    }

    #[test]
    fn records_render_as_objects() {
        let store = AttributeStore::new();
        let func = store.create_simple("function", ValueType::Str);
        let count = store.create_simple("count", ValueType::UInt);
        let mut rec = FlatRecord::new();
        rec.push(func.id(), Value::str("main"));
        rec.push(func.id(), Value::str("foo"));
        rec.push(count.id(), Value::UInt(7));
        let json = record_to_json(&store, &rec);
        assert_eq!(json, "{\"function\":\"main/foo\",\"count\":7}");

        let arr = records_to_json(&store, &[rec.clone(), rec]);
        assert!(arr.starts_with("[\n{"));
        assert_eq!(arr.matches("\"count\":7").count(), 2);
    }
}
