//! Hand-rolled JSON encoder (record lists) and a minimal parser.
//!
//! The encoder emits an array of objects, one per record, with
//! attribute labels as keys. The parser ([`parse_json`]) reads back the
//! same subset — the tools use it to validate their own machine-
//! readable outputs (`cali-query --stats=json`, `FORMAT json`) without
//! pulling in serde_json; the subset of JSON we need — objects and
//! arrays of string/number/bool values — is tiny.

use caliper_data::{AttributeStore, FlatRecord, Value};

/// Escape a string per RFC 8259.
pub fn escape_json(input: &str) -> String {
    let mut out = String::with_capacity(input.len() + 2);
    for ch in input.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Encode one value as a JSON literal. Non-finite floats become `null`
/// (JSON has no NaN/Inf).
pub fn value_to_json(value: &Value) -> String {
    match value {
        Value::Str(s) => format!("\"{}\"", escape_json(s)),
        Value::Int(i) => i.to_string(),
        Value::UInt(u) => u.to_string(),
        Value::Float(f) if f.is_finite() => {
            // Ensure the output re-parses as a float, not an int.
            if f.fract() == 0.0 && f.abs() < 1e15 {
                format!("{f:.1}")
            } else {
                f.to_string()
            }
        }
        Value::Float(_) => "null".to_string(),
        Value::Bool(b) => b.to_string(),
    }
}

/// Collect a record's members as (escaped key, encoded value) pairs.
/// Repeated (nested) attributes are joined into their path string,
/// matching the table formatter.
fn json_members(store: &AttributeStore, record: &FlatRecord) -> Vec<(String, String)> {
    let mut seen = Vec::new();
    let mut members = Vec::new();
    for (attr, _) in record.pairs() {
        if seen.contains(attr) {
            continue;
        }
        seen.push(*attr);
        let name = match store.name_of(*attr) {
            Some(n) => n,
            None => continue,
        };
        let value = record
            .path_string(*attr)
            .expect("attribute present by construction");
        members.push((escape_json(&name), value_to_json(&value)));
    }
    members
}

/// Encode one record as a JSON object.
pub fn record_to_json(store: &AttributeStore, record: &FlatRecord) -> String {
    let mut out = String::from("{");
    for (i, (key, value)) in json_members(store, record).iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('"');
        out.push_str(key);
        out.push_str("\":");
        out.push_str(value);
    }
    out.push('}');
    out
}

/// Encode a record list as a JSON array of objects, one record per line.
pub fn records_to_json(store: &AttributeStore, records: &[FlatRecord]) -> String {
    records_to_json_opts(store, records, false)
}

/// Encode a record list as JSON. With `pretty`, each member gets its own
/// indented line (`FORMAT json(pretty)`); otherwise one compact object
/// per line.
pub fn records_to_json_opts(
    store: &AttributeStore,
    records: &[FlatRecord],
    pretty: bool,
) -> String {
    let mut out = String::from("[\n");
    for (i, rec) in records.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        if pretty {
            let members = json_members(store, rec);
            if members.is_empty() {
                out.push_str("{}");
            } else {
                out.push_str("{\n");
                for (j, (key, value)) in members.iter().enumerate() {
                    if j > 0 {
                        out.push_str(",\n");
                    }
                    out.push_str("  \"");
                    out.push_str(key);
                    out.push_str("\": ");
                    out.push_str(value);
                }
                out.push_str("\n}");
            }
        } else {
            out.push_str(&record_to_json(store, rec));
        }
    }
    out.push_str("\n]\n");
    out
}

/// A parsed JSON value (the decode-side counterpart of the encoder
/// above). Object members keep source order so callers can check
/// key-ordering contracts (the `--stats=json` block must be sorted).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null` (also produced by the encoder for non-finite floats).
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (parsed as f64; integers up to 2^53 are exact).
    Num(f64),
    /// A string literal, unescaped.
    Str(String),
    /// An array.
    Array(Vec<Json>),
    /// An object, members in source order.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// Member lookup for objects; `None` for other variants.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Object keys in source order; empty for other variants.
    pub fn keys(&self) -> Vec<&str> {
        match self {
            Json::Object(members) => members.iter().map(|(k, _)| k.as_str()).collect(),
            _ => Vec::new(),
        }
    }
}

/// Error from [`parse_json`]: a message plus the byte offset it refers
/// to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// What went wrong.
    pub message: String,
    /// Byte offset into the input.
    pub offset: usize,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Parse one JSON document. Trailing whitespace is allowed; trailing
/// content is an error.
pub fn parse_json(input: &str) -> Result<Json, JsonError> {
    let mut p = JsonParser {
        text: input,
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.error("trailing content after JSON value"));
    }
    Ok(value)
}

struct JsonParser<'a> {
    text: &'a str,
    bytes: &'a [u8],
    pos: usize,
}

impl JsonParser<'_> {
    fn error(&self, message: &str) -> JsonError {
        JsonError {
            message: message.to_string(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.error(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.error("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            members.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(members));
                }
                _ => return Err(self.error("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(self.error("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.error("bad \\u escape"))?;
                            // Surrogates (emitted only for non-BMP text,
                            // which our encoder writes verbatim) are not
                            // supported; map them to the replacement char.
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.error("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar. `pos` only ever advances
                    // by whole tokens or `len_utf8()`, so it stays on a
                    // char boundary of the source text.
                    let ch = self.text[self.pos..].chars().next().expect("non-empty");
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.error("bad number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use caliper_data::ValueType;

    #[test]
    fn escapes_special_characters() {
        assert_eq!(escape_json("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape_json("\u{1}"), "\\u0001");
    }

    #[test]
    fn values_encode_per_type() {
        assert_eq!(value_to_json(&Value::Int(-3)), "-3");
        assert_eq!(value_to_json(&Value::UInt(3)), "3");
        assert_eq!(value_to_json(&Value::Float(1.5)), "1.5");
        assert_eq!(value_to_json(&Value::Float(2.0)), "2.0");
        assert_eq!(value_to_json(&Value::Float(f64::NAN)), "null");
        assert_eq!(value_to_json(&Value::Bool(true)), "true");
        assert_eq!(value_to_json(&Value::str("x")), "\"x\"");
    }

    #[test]
    fn records_render_as_objects() {
        let store = AttributeStore::new();
        let func = store.create_simple("function", ValueType::Str);
        let count = store.create_simple("count", ValueType::UInt);
        let mut rec = FlatRecord::new();
        rec.push(func.id(), Value::str("main"));
        rec.push(func.id(), Value::str("foo"));
        rec.push(count.id(), Value::UInt(7));
        let json = record_to_json(&store, &rec);
        assert_eq!(json, "{\"function\":\"main/foo\",\"count\":7}");

        let arr = records_to_json(&store, &[rec.clone(), rec]);
        assert!(arr.starts_with("[\n{"));
        assert_eq!(arr.matches("\"count\":7").count(), 2);
    }

    #[test]
    fn pretty_output_indents_members() {
        let store = AttributeStore::new();
        let func = store.create_simple("function", ValueType::Str);
        let mut rec = FlatRecord::new();
        rec.push(func.id(), Value::str("main"));
        let pretty = records_to_json_opts(&store, &[rec.clone()], true);
        assert_eq!(pretty, "[\n{\n  \"function\": \"main\"\n}\n]\n");
        // Pretty output must still parse.
        assert!(parse_json(&pretty).is_ok());
        assert_eq!(
            records_to_json_opts(&store, &[rec], false),
            "[\n{\"function\":\"main\"}\n]\n"
        );
    }

    #[test]
    fn parser_reads_scalars_and_structure() {
        assert_eq!(parse_json("null").unwrap(), Json::Null);
        assert_eq!(parse_json(" true ").unwrap(), Json::Bool(true));
        assert_eq!(parse_json("-2.5e2").unwrap(), Json::Num(-250.0));
        assert_eq!(
            parse_json("\"a\\nb\\u0041\"").unwrap(),
            Json::Str("a\nbA".into())
        );
        let doc = parse_json("{\"a\":[1,2],\"b\":{\"c\":\"x\"}}").unwrap();
        assert_eq!(doc.keys(), ["a", "b"]);
        assert_eq!(
            doc.get("a"),
            Some(&Json::Array(vec![Json::Num(1.0), Json::Num(2.0)]))
        );
        assert_eq!(doc.get("b").unwrap().get("c"), Some(&Json::Str("x".into())));
    }

    #[test]
    fn parser_rejects_malformed_input() {
        for bad in ["", "{", "[1,", "{\"a\"}", "tru", "1 2", "\"x", "{,}"] {
            assert!(parse_json(bad).is_err(), "accepted {bad:?}");
        }
        let err = parse_json("[1, }").unwrap_err();
        assert!(err.to_string().contains("byte 4"), "{err}");
    }

    #[test]
    fn parser_roundtrips_encoder_output() {
        let store = AttributeStore::new();
        let func = store.create_simple("function", ValueType::Str);
        let t = store.create_simple("t", ValueType::Float);
        let n = store.create_simple("n", ValueType::UInt);
        let mut rec = FlatRecord::new();
        rec.push(func.id(), Value::str("main \"quoted\""));
        rec.push(t.id(), Value::Float(2.0));
        rec.push(n.id(), Value::UInt(7));
        let doc = parse_json(&records_to_json(&store, &[rec])).unwrap();
        let Json::Array(items) = &doc else {
            panic!("expected array, got {doc:?}")
        };
        assert_eq!(items[0].get("function"), Some(&Json::Str("main \"quoted\"".into())));
        assert_eq!(items[0].get("t").and_then(Json::as_num), Some(2.0));
        assert_eq!(items[0].get("n").and_then(Json::as_num), Some(7.0));
    }
}
