//! Failure-injection tests for the `.cali` reader: corrupted, truncated
//! and adversarial streams must produce errors (or skip cleanly), never
//! panics or silently wrong data.

use caliper_data::{Properties, SnapshotRecord, Value, ValueType, NODE_NONE};
use caliper_format::{cali, CaliReader, Dataset};

fn sample_bytes() -> Vec<u8> {
    let mut ds = Dataset::new();
    let func = ds.attribute("function", ValueType::Str, Properties::NESTED);
    let dur = ds.attribute(
        "time.duration",
        ValueType::Float,
        Properties::AS_VALUE | Properties::AGGREGATABLE,
    );
    let main = ds.tree.get_child(NODE_NONE, func.id(), &Value::str("main"));
    let foo = ds.tree.get_child(main, func.id(), &Value::str("foo"));
    for i in 0..10 {
        let mut rec = SnapshotRecord::new();
        rec.push_node(if i % 2 == 0 { foo } else { main });
        rec.push_imm(dur.id(), Value::Float(i as f64));
        ds.push(rec);
    }
    cali::to_bytes(&ds)
}

#[test]
fn truncating_at_any_line_boundary_yields_a_prefix() {
    let bytes = sample_bytes();
    let text = String::from_utf8(bytes).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    for cut in 0..=lines.len() {
        let prefix = lines[..cut].join("\n");
        let ds = cali::from_bytes(prefix.as_bytes())
            .unwrap_or_else(|e| panic!("prefix of {cut} lines failed: {e}"));
        assert!(ds.len() <= 10);
    }
}

#[test]
fn corrupting_single_bytes_never_panics() {
    let bytes = sample_bytes();
    // Flip one byte at a time across the stream; the reader must either
    // parse (the corruption hit a value) or report an error.
    for pos in (0..bytes.len()).step_by(7) {
        let mut corrupted = bytes.clone();
        corrupted[pos] = corrupted[pos].wrapping_add(13) % 127 + 1; // keep it UTF-8-ish
        let _ = cali::from_bytes(&corrupted); // must not panic
    }
}

#[test]
fn references_to_undeclared_ids_are_errors() {
    for line in [
        "__rec=node,id=0,attr=99,data=x",
        "__rec=ctx,ref=42",
        "__rec=ctx,attr=7,data=1",
        "__rec=node,id=1,attr=0,parent=77,data=x",
    ] {
        let input = format!("__rec=attr,id=0,name=a,type=string,prop=default\n{line}\n");
        let err = cali::from_bytes(input.as_bytes()).unwrap_err();
        let text = err.to_string();
        assert!(text.contains("line 2"), "{line}: {text}");
    }
}

#[test]
fn type_mismatched_data_is_an_error() {
    let input = "__rec=attr,id=0,name=n,type=int,prop=default\n__rec=ctx,attr=0,data=not-a-number\n";
    let err = cali::from_bytes(input.as_bytes()).unwrap_err();
    assert!(err.to_string().contains("cannot parse"), "{err}");
}

#[test]
fn data_without_preceding_attr_is_an_error() {
    let input = "__rec=ctx,data=orphan\n";
    let err = cali::from_bytes(input.as_bytes()).unwrap_err();
    assert!(err.to_string().contains("without preceding attr"), "{err}");
}

#[test]
fn duplicate_attribute_with_conflicting_type_is_an_error() {
    let input = "__rec=attr,id=0,name=x,type=int,prop=default\n\
                 __rec=attr,id=1,name=x,type=string,prop=default\n";
    let err = cali::from_bytes(input.as_bytes()).unwrap_err();
    assert!(err.to_string().contains("already exists"), "{err}");
}

#[test]
fn unknown_record_kinds_and_fields() {
    // Unknown kind: error. Unknown *fields* inside a known kind: ignored
    // (forward compatibility).
    assert!(cali::from_bytes(b"__rec=mystery,x=1\n").is_err());
    let input = "__rec=attr,id=0,name=a,type=string,prop=default,futurefield=zap\n\
                 __rec=ctx,attr=0,data=v,alsofuture=1\n";
    let ds = cali::from_bytes(input.as_bytes()).unwrap();
    assert_eq!(ds.len(), 1);
}

#[test]
fn blank_lines_and_comments_are_skipped() {
    let bytes = sample_bytes();
    let text = String::from_utf8(bytes).unwrap();
    let noisy: String = text
        .lines()
        .flat_map(|l| ["# comment", "", l])
        .collect::<Vec<_>>()
        .join("\n");
    let ds = cali::from_bytes(noisy.as_bytes()).unwrap();
    assert_eq!(ds.len(), 10);
}

#[test]
fn reader_survives_partial_use_after_error() {
    let mut reader = CaliReader::new();
    reader
        .read_line("__rec=attr,id=0,name=a,type=int,prop=default")
        .unwrap();
    assert!(reader.read_line("__rec=node,id=0,attr=5,data=1").is_err());
    // Continuing after an error still works for valid lines.
    reader.read_line("__rec=ctx,attr=0,data=7").unwrap();
    let ds = reader.finish();
    assert_eq!(ds.len(), 1);
}

#[test]
fn giant_values_roundtrip() {
    let mut ds = Dataset::new();
    let attr = ds.attribute("blob", ValueType::Str, Properties::AS_VALUE);
    let big = "x".repeat(1 << 20); // 1 MiB value
    let mut rec = SnapshotRecord::new();
    rec.push_imm(attr.id(), Value::str(big.as_str()));
    ds.push(rec);
    let back = cali::from_bytes(&cali::to_bytes(&ds)).unwrap();
    let attr2 = back.store.find("blob").unwrap();
    let flat: Vec<_> = back.flat_records().collect();
    assert_eq!(flat[0].get(attr2.id()).unwrap().to_string().len(), 1 << 20);
}

#[test]
fn deep_nesting_roundtrips() {
    let mut ds = Dataset::new();
    let func = ds.attribute("function", ValueType::Str, Properties::NESTED);
    let mut node = NODE_NONE;
    for i in 0..10_000 {
        node = ds
            .tree
            .get_child(node, func.id(), &Value::str(format!("f{i}")));
    }
    let mut rec = SnapshotRecord::new();
    rec.push_node(node);
    ds.push(rec);
    let back = cali::from_bytes(&cali::to_bytes(&ds)).unwrap();
    let func2 = back.store.find("function").unwrap();
    let flat: Vec<_> = back.flat_records().collect();
    assert_eq!(flat[0].all(func2.id()).count(), 10_000);
}
