//! Failure-injection tests for the `.cali` (text) and `CALB` (binary)
//! readers: corrupted, truncated and adversarial streams must produce
//! errors (or skip cleanly, under a lenient [`ReadPolicy`]), never
//! panics or silently wrong data.

use caliper_data::{Properties, SnapshotRecord, Value, ValueType, NODE_NONE};
use caliper_format::{binary, cali, CaliReader, Dataset, ReadPolicy};
use proptest::prelude::*;

fn sample_bytes() -> Vec<u8> {
    let mut ds = Dataset::new();
    let func = ds.attribute("function", ValueType::Str, Properties::NESTED);
    let dur = ds.attribute(
        "time.duration",
        ValueType::Float,
        Properties::AS_VALUE | Properties::AGGREGATABLE,
    );
    let main = ds.tree.get_child(NODE_NONE, func.id(), &Value::str("main"));
    let inner = ds.tree.get_child(main, func.id(), &Value::str("inner"));
    for i in 0..10u32 {
        let mut rec = SnapshotRecord::new();
        rec.push_node(if i.is_multiple_of(2) { inner } else { main });
        rec.push_imm(dur.id(), Value::Float(i as f64));
        ds.push(rec);
    }
    cali::to_bytes(&ds)
}

#[test]
fn truncating_at_any_line_boundary_yields_a_prefix() {
    let bytes = sample_bytes();
    let text = String::from_utf8(bytes).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    for cut in 0..=lines.len() {
        let prefix = lines[..cut].join("\n");
        let ds = cali::from_bytes(prefix.as_bytes())
            .unwrap_or_else(|e| panic!("prefix of {cut} lines failed: {e}"));
        assert!(ds.len() <= 10);
    }
}

#[test]
fn corrupting_single_bytes_never_panics() {
    let bytes = sample_bytes();
    // Flip one byte at a time across the stream; the reader must either
    // parse (the corruption hit a value) or report an error.
    for pos in (0..bytes.len()).step_by(7) {
        let mut corrupted = bytes.clone();
        corrupted[pos] = corrupted[pos].wrapping_add(13) % 127 + 1; // keep it UTF-8-ish
        let _ = cali::from_bytes(&corrupted); // must not panic
    }
}

#[test]
fn references_to_undeclared_ids_are_errors() {
    for line in [
        "__rec=node,id=0,attr=99,data=x",
        "__rec=ctx,ref=42",
        "__rec=ctx,attr=7,data=1",
        "__rec=node,id=1,attr=0,parent=77,data=x",
    ] {
        let input = format!("__rec=attr,id=0,name=a,type=string,prop=default\n{line}\n");
        let err = cali::from_bytes(input.as_bytes()).unwrap_err();
        let text = err.to_string();
        assert!(text.contains("line 2"), "{line}: {text}");
    }
}

#[test]
fn type_mismatched_data_is_an_error() {
    let input = "__rec=attr,id=0,name=n,type=int,prop=default\n__rec=ctx,attr=0,data=not-a-number\n";
    let err = cali::from_bytes(input.as_bytes()).unwrap_err();
    assert!(err.to_string().contains("cannot parse"), "{err}");
}

#[test]
fn data_without_preceding_attr_is_an_error() {
    let input = "__rec=ctx,data=orphan\n";
    let err = cali::from_bytes(input.as_bytes()).unwrap_err();
    assert!(err.to_string().contains("without preceding attr"), "{err}");
}

#[test]
fn duplicate_attribute_with_conflicting_type_is_an_error() {
    let input = "__rec=attr,id=0,name=x,type=int,prop=default\n\
                 __rec=attr,id=1,name=x,type=string,prop=default\n";
    let err = cali::from_bytes(input.as_bytes()).unwrap_err();
    assert!(err.to_string().contains("already exists"), "{err}");
}

#[test]
fn unknown_record_kinds_and_fields() {
    // Unknown kind: error. Unknown *fields* inside a known kind: ignored
    // (forward compatibility).
    assert!(cali::from_bytes(b"__rec=mystery,x=1\n").is_err());
    let input = "__rec=attr,id=0,name=a,type=string,prop=default,futurefield=zap\n\
                 __rec=ctx,attr=0,data=v,alsofuture=1\n";
    let ds = cali::from_bytes(input.as_bytes()).unwrap();
    assert_eq!(ds.len(), 1);
}

#[test]
fn blank_lines_and_comments_are_skipped() {
    let bytes = sample_bytes();
    let text = String::from_utf8(bytes).unwrap();
    let noisy: String = text
        .lines()
        .flat_map(|l| ["# comment", "", l])
        .collect::<Vec<_>>()
        .join("\n");
    let ds = cali::from_bytes(noisy.as_bytes()).unwrap();
    assert_eq!(ds.len(), 10);
}

#[test]
fn reader_survives_partial_use_after_error() {
    let mut reader = CaliReader::new();
    reader
        .read_line("__rec=attr,id=0,name=a,type=int,prop=default")
        .unwrap();
    assert!(reader.read_line("__rec=node,id=0,attr=5,data=1").is_err());
    // Continuing after an error still works for valid lines.
    reader.read_line("__rec=ctx,attr=0,data=7").unwrap();
    let ds = reader.finish();
    assert_eq!(ds.len(), 1);
}

/// Renders every snapshot record of a dataset for content comparison.
fn record_lines(ds: &Dataset) -> Vec<String> {
    ds.flat_records().map(|r| r.describe(&ds.store)).collect()
}

#[test]
fn calb_truncation_at_every_byte_is_a_prefix_of_the_clean_decode() {
    let ds = cali::from_bytes(&sample_bytes()).unwrap();
    let bytes = binary::to_binary(&ds);
    let clean = record_lines(&binary::from_binary(&bytes).unwrap());
    // The 5-byte header (magic + version) is a hard requirement even
    // when lenient; after that, every cut must yield a valid prefix.
    for cut in 0..5 {
        assert!(binary::from_binary_with(&bytes[..cut], ReadPolicy::lenient()).is_err());
    }
    let mut prev = 0usize;
    for cut in 5..=bytes.len() {
        let (prefix, report) =
            binary::from_binary_with(&bytes[..cut], ReadPolicy::lenient()).unwrap();
        let lines = record_lines(&prefix);
        assert_eq!(lines, clean[..lines.len()], "cut at {cut}");
        assert!(lines.len() >= prev, "prefix shrank at {cut}");
        prev = lines.len();
        // A cut landing exactly on a record boundary is indistinguishable
        // from a shorter file and may go unreported; the full stream must
        // decode without complaints.
        if cut == bytes.len() {
            assert!(report.is_clean(), "clean stream reported dirty: {report:?}");
        }
    }
    assert_eq!(prev, clean.len(), "full stream decodes completely");
}

#[test]
fn calb_flipped_bytes_never_panic_and_never_invent_records() {
    let ds = cali::from_bytes(&sample_bytes()).unwrap();
    let bytes = binary::to_binary(&ds);
    let clean = binary::from_binary(&bytes).unwrap().len();
    for pos in 5..bytes.len() {
        let mut corrupted = bytes.clone();
        corrupted[pos] = !corrupted[pos]; // flip every bit: lengths, tags, values
        let _ = binary::from_binary(&corrupted); // strict: must not panic
        if let Ok((ds, _)) = binary::from_binary_with(&corrupted, ReadPolicy::lenient()) {
            // A flip can change values or cut the stream short, but the
            // lenient prefix can never contain *more* records than the
            // clean stream.
            assert!(ds.len() <= clean, "flip at {pos} invented records");
        }
    }
}

#[test]
fn calb_huge_length_fields_error_instead_of_panicking() {
    // A crafted attr record whose name-length varint decodes to
    // u64::MAX must be rejected as truncation, not overflow the
    // cursor arithmetic or attempt the allocation.
    let mut bytes = b"CALB\x01".to_vec();
    bytes.push(0x01); // TAG_ATTR
    bytes.push(0x00); // id 0
    bytes.extend_from_slice(&[0xFF; 9]); // varint: u64::MAX
    bytes.push(0x01);
    assert!(binary::from_binary(&bytes).is_err());
    let (ds, report) = binary::from_binary_with(&bytes, ReadPolicy::lenient()).unwrap();
    assert_eq!(ds.len(), 0);
    assert!(report.truncated);
}

#[test]
fn calb_garbage_tail_is_skipped_leniently() {
    let ds = cali::from_bytes(&sample_bytes()).unwrap();
    let mut bytes = binary::to_binary(&ds);
    let clean = record_lines(&binary::from_binary(&bytes).unwrap());
    bytes.extend_from_slice(&[0xFE; 64]);
    assert!(binary::from_binary(&bytes).is_err(), "strict must reject the tail");
    let (back, report) = binary::from_binary_with(&bytes, ReadPolicy::lenient()).unwrap();
    assert_eq!(record_lines(&back), clean);
    assert!(report.truncated);
    assert_eq!(report.skipped, 1);
}

proptest! {
    /// Deleting any subset of lines from a valid text stream and
    /// decoding leniently yields a sub-multiset of the clean decode's
    /// records — corruption may lose data, it must never fabricate it.
    #[test]
    fn lenient_text_decode_of_a_line_deleted_stream_is_a_submultiset(
        keep in prop::collection::vec(any::<bool>(), 60),
    ) {
        let clean_ds = cali::from_bytes(&sample_bytes()).unwrap();
        let mut clean = record_lines(&clean_ds);
        let text = String::from_utf8(sample_bytes()).unwrap();
        let damaged: String = text
            .lines()
            .enumerate()
            .filter(|(i, _)| *keep.get(*i).unwrap_or(&true))
            .map(|(_, l)| format!("{l}\n"))
            .collect();
        let (back, _report) =
            cali::from_bytes_with(damaged.as_bytes(), ReadPolicy::lenient()).unwrap();
        // Every surviving record must appear in the clean decode
        // (multiset containment: remove matches one by one).
        for line in record_lines(&back) {
            let pos = clean.iter().position(|c| *c == line);
            prop_assert!(pos.is_some(), "fabricated record: {line}");
            clean.remove(pos.unwrap());
        }
    }

    /// Truncating a binary stream at an arbitrary byte and decoding
    /// leniently yields exactly a prefix of the clean decode.
    #[test]
    fn lenient_calb_decode_of_a_truncation_is_a_prefix(cut_seed in 0usize..10_000) {
        let ds = cali::from_bytes(&sample_bytes()).unwrap();
        let bytes = binary::to_binary(&ds);
        let clean = record_lines(&binary::from_binary(&bytes).unwrap());
        let cut = 5 + cut_seed % (bytes.len() - 4);
        let (prefix, _report) =
            binary::from_binary_with(&bytes[..cut], ReadPolicy::lenient()).unwrap();
        let lines = record_lines(&prefix);
        prop_assert_eq!(&lines[..], &clean[..lines.len()]);
    }
}

#[test]
fn giant_values_roundtrip() {
    let mut ds = Dataset::new();
    let attr = ds.attribute("blob", ValueType::Str, Properties::AS_VALUE);
    let big = "x".repeat(1 << 20); // 1 MiB value
    let mut rec = SnapshotRecord::new();
    rec.push_imm(attr.id(), Value::str(big.as_str()));
    ds.push(rec);
    let back = cali::from_bytes(&cali::to_bytes(&ds)).unwrap();
    let attr2 = back.store.find("blob").unwrap();
    let flat: Vec<_> = back.flat_records().collect();
    assert_eq!(flat[0].get(attr2.id()).unwrap().to_string().len(), 1 << 20);
}

#[test]
fn deep_nesting_roundtrips() {
    let mut ds = Dataset::new();
    let func = ds.attribute("function", ValueType::Str, Properties::NESTED);
    let mut node = NODE_NONE;
    for i in 0..10_000 {
        node = ds
            .tree
            .get_child(node, func.id(), &Value::str(format!("f{i}")));
    }
    let mut rec = SnapshotRecord::new();
    rec.push_node(node);
    ds.push(rec);
    let back = cali::from_bytes(&cali::to_bytes(&ds)).unwrap();
    let func2 = back.store.find("function").unwrap();
    let flat: Vec<_> = back.flat_records().collect();
    assert_eq!(flat[0].all(func2.id()).count(), 10_000);
}

// ---- write-ahead journal recovery (crash-safety tentpole) ----

use caliper_format::journal::{self, FlushPolicy, JournalWriter, SEQ_ATTR};

/// Build a journal byte stream the way the runtime sink does: every
/// snapshot carries a monotonic `journal.seq`, metadata precedes first
/// use, one record per line, flushed after every record.
fn journal_stream(n: u64) -> Vec<u8> {
    let ds = Dataset::new();
    let kernel = ds.attribute("kernel", ValueType::Str, Properties::NESTED);
    let dur = ds.attribute(
        "time.duration",
        ValueType::Float,
        Properties::AS_VALUE | Properties::AGGREGATABLE,
    );
    let seq = ds.attribute(SEQ_ATTR, ValueType::UInt, Properties::AS_VALUE);
    let dir = std::env::temp_dir().join(format!("cali-journal-fi-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(format!("stream{n}.cali"));
    let mut w = JournalWriter::create(&path, FlushPolicy::default()).unwrap();
    for i in 0..n {
        let node = ds.tree.get_child(
            NODE_NONE,
            kernel.id(),
            &Value::str(["solve", "io", "halo"][(i % 3) as usize]),
        );
        let mut rec = SnapshotRecord::new();
        rec.push_node(node);
        rec.push_imm(dur.id(), Value::Float(i as f64 * 1.5));
        rec.push_imm(seq.id(), Value::UInt(i));
        w.append_snapshot(&ds, &rec).unwrap();
    }
    drop(w);
    let bytes = std::fs::read(&path).unwrap();
    std::fs::remove_file(&path).ok();
    bytes
}

/// Number of complete (newline-terminated) `__rec=ctx` lines in a
/// prefix — the exact salvage a journal recovery must produce.
fn complete_ctx_lines(prefix: &[u8]) -> usize {
    let mut count = 0;
    let mut start = 0;
    for (i, &b) in prefix.iter().enumerate() {
        if b == b'\n' {
            if prefix[start..i].starts_with(b"__rec=ctx") {
                count += 1;
            }
            start = i + 1;
        }
    }
    count
}

/// The tentpole's crash-consistency contract, checked exhaustively: a
/// journal truncated at *every* byte offset recovers exactly the
/// fully-flushed prefix — no partial records, no sequence gaps, no
/// panics.
#[test]
fn journal_truncation_at_every_byte_salvages_the_flushed_prefix() {
    let bytes = journal_stream(12);
    let mut last_salvaged = 0u64;
    for cut in 0..=bytes.len() {
        let prefix = &bytes[..cut];
        let expected = complete_ctx_lines(prefix);
        let (ds, report) = journal::recover_bytes(prefix, ReadPolicy::lenient())
            .unwrap_or_else(|e| panic!("recovery at cut {cut} failed: {e}"));
        assert_eq!(report.salvaged as usize, expected, "cut={cut}");
        assert_eq!(ds.records.len(), expected, "cut={cut}");
        // Pure tail truncation never produces mid-sequence gaps or
        // duplicates, and the salvage is monotone in the cut offset.
        assert_eq!(report.missing, 0, "cut={cut}");
        assert_eq!(report.duplicates, 0, "cut={cut}");
        assert!(report.salvaged >= last_salvaged, "cut={cut}");
        last_salvaged = report.salvaged;
    }
    // The untruncated journal recovers everything.
    let (_, full) = journal::recover_bytes(&bytes, ReadPolicy::lenient()).unwrap();
    assert_eq!(full.salvaged, 12);
    assert!(!full.data_lost());
}

proptest! {
    /// Snapshot → journal → recover roundtrips losslessly when no
    /// fault is injected, for arbitrary record shapes.
    #[test]
    fn journal_roundtrip_is_lossless(
        records in prop::collection::vec(
            ("[ -~]{0,16}", any::<i32>()),
            1..24,
        ),
    ) {
        static CASE: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let case = CASE.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let mut ds = Dataset::new();
        let region = ds.attribute("region", ValueType::Str, Properties::NESTED);
        let val = ds.attribute("val", ValueType::Int, Properties::AS_VALUE);
        let seq = ds.attribute(SEQ_ATTR, ValueType::UInt, Properties::AS_VALUE);
        let dir = std::env::temp_dir().join(format!("cali-journal-prop-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("case{case}.cali"));

        let mut originals = Vec::new();
        let mut w = JournalWriter::create(&path, FlushPolicy::default()).unwrap();
        for (i, (name, value)) in records.iter().enumerate() {
            let node = ds.tree.get_child(NODE_NONE, region.id(), &Value::str(name.as_str()));
            let mut rec = SnapshotRecord::new();
            rec.push_node(node);
            rec.push_imm(val.id(), Value::Int(*value as i64));
            rec.push_imm(seq.id(), Value::UInt(i as u64));
            w.append_snapshot(&ds, &rec).unwrap();
            originals.push(rec);
        }
        drop(w);

        let (back, report) = journal::recover_file(&path, ReadPolicy::lenient()).unwrap();
        std::fs::remove_file(&path).ok();
        prop_assert!(!report.data_lost(), "{}", report.summary());
        prop_assert_eq!(report.salvaged as usize, originals.len());
        prop_assert_eq!(report.duplicates, 0);

        for rec in originals {
            ds.push(rec);
        }
        let orig: Vec<String> = ds.flat_records().map(|r| r.describe(&ds.store)).collect();
        let read: Vec<String> = back.flat_records().map(|r| r.describe(&back.store)).collect();
        prop_assert_eq!(orig, read);
    }
}
