//! Property-based tests: the `.cali` codec must roundtrip arbitrary
//! datasets, the CALB v2 columnar codec must decode to the same dataset
//! as v1 (and zone-map skipping must never drop a matching record), and
//! the escaping layer must roundtrip arbitrary strings.

use caliper_data::{Properties, SnapshotRecord, Value, ValueType, NODE_NONE};
use caliper_format::pushdown::{Predicate, Pushdown, PushdownOp};
use caliper_format::{cali, escape, Dataset, ReadPolicy, ReadReport, V2WriteOptions};
use proptest::prelude::*;

fn arb_label() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9._]{0,15}"
}

/// Values whose textual form roundtrips exactly (no NaN).
fn arb_roundtrip_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        "[ -~]{0,32}".prop_map(Value::str), // printable ASCII incl. , = \
        any::<i64>().prop_map(Value::Int),
        any::<u64>().prop_map(Value::UInt),
        any::<i32>().prop_map(|i| Value::Float(i as f64 / 8.0)),
        any::<bool>().prop_map(Value::Bool),
    ]
}

/// The random record shape the codec roundtrip properties share:
/// nesting stacks over `labels` plus typed immediates.
type ArbRecords = Vec<(Vec<(usize, String)>, Vec<(usize, Value)>)>;

/// Materialize the random shape into a dataset (nested attributes from
/// `labels`, one immediate attribute per value type, values coerced to
/// the immediate attribute's type so the stream stays type-faithful).
fn build_dataset(labels: &[String], records: &ArbRecords) -> Dataset {
    let mut ds = Dataset::new();
    let nested: Vec<_> = labels
        .iter()
        .enumerate()
        .map(|(i, l)| ds.attribute(&format!("n.{i}.{l}"), ValueType::Str, Properties::NESTED))
        .collect();
    let imm: Vec<_> = [
        ValueType::Str,
        ValueType::Int,
        ValueType::UInt,
        ValueType::Float,
    ]
    .iter()
    .enumerate()
    .map(|(i, t)| ds.attribute(&format!("imm.{i}"), *t, Properties::AS_VALUE))
    .collect();

    for (stack, imms) in records {
        let mut node = NODE_NONE;
        for (ai, v) in stack {
            let attr = &nested[ai % nested.len()];
            node = ds.tree.get_child(node, attr.id(), &Value::str(v.as_str()));
        }
        let mut rec = SnapshotRecord::new();
        if node != NODE_NONE {
            rec.push_node(node);
        }
        for (ai, v) in imms {
            let attr = &imm[ai % imm.len()];
            let coerced = match attr.value_type() {
                ValueType::Str => Value::str(v.to_string()),
                ValueType::Int => Value::Int(v.to_i64().unwrap_or(0)),
                ValueType::UInt => Value::UInt(v.to_u64().unwrap_or(0)),
                ValueType::Float => Value::Float(v.to_f64().unwrap_or(0.0)),
                ValueType::Bool => Value::Bool(v.is_truthy()),
            };
            rec.push_imm(attr.id(), coerced);
        }
        ds.push(rec);
    }
    ds
}

/// Sorted flat-record descriptions — a dataset's multiset of expanded
/// records, independent of id assignment.
fn record_multiset(ds: &Dataset) -> Vec<String> {
    let mut out: Vec<String> = ds.flat_records().map(|r| r.describe(&ds.store)).collect();
    out.sort();
    out
}

/// Runtime semantics of one pushed-down comparison (mirrors
/// `FilterSet`: presence required; `!=` means *every* occurrence
/// differs, the other operators mean *some* occurrence satisfies).
fn record_matches(ds: &Dataset, rec: &caliper_data::FlatRecord, pred: &Predicate) -> bool {
    let (name, op, literal) = match pred {
        Predicate::Cmp { attr, op, value } => (attr, op, value),
        _ => unreachable!("only Cmp predicates are generated here"),
    };
    let Some(attr) = ds.store.find(name) else {
        return false;
    };
    let mut occurrences = rec.all(attr.id()).peekable();
    if occurrences.peek().is_none() {
        return false;
    }
    use std::cmp::Ordering;
    match op {
        PushdownOp::Eq => occurrences.any(|v| v == literal),
        PushdownOp::Ne => occurrences.all(|v| v != literal),
        PushdownOp::Lt => occurrences.any(|v| v.total_cmp(literal) == Ordering::Less),
        PushdownOp::Gt => occurrences.any(|v| v.total_cmp(literal) == Ordering::Greater),
        PushdownOp::Le => occurrences.any(|v| v.total_cmp(literal) != Ordering::Greater),
        PushdownOp::Ge => occurrences.any(|v| v.total_cmp(literal) != Ordering::Less),
    }
}

proptest! {
    #[test]
    fn escape_roundtrips(s in "\\PC*") {
        prop_assert_eq!(escape::unescape(&escape::escape(&s)), s);
    }

    #[test]
    fn escaped_strings_are_single_line(s in "\\PC*") {
        prop_assert!(!escape::escape(&s).contains('\n'));
    }

    /// Build a random dataset (random nesting stacks + immediates),
    /// serialize, parse, and compare the expanded record streams.
    #[test]
    fn cali_roundtrip(
        labels in prop::collection::vec(arb_label(), 2..5),
        records in prop::collection::vec(
            (
                prop::collection::vec((0usize..4, "[ -~]{0,16}"), 0..5), // stack pushes
                prop::collection::vec((0usize..4, arb_roundtrip_value()), 0..4), // immediates
            ),
            0..20,
        ),
    ) {
        let ds = build_dataset(&labels, &records);

        let bytes = cali::to_bytes(&ds);
        let ds2 = cali::from_bytes(&bytes).unwrap();
        prop_assert_eq!(ds2.len(), ds.len());

        let orig: Vec<String> = ds.flat_records().map(|r| r.describe(&ds.store)).collect();
        let back: Vec<String> = ds2.flat_records().map(|r| r.describe(&ds2.store)).collect();
        prop_assert_eq!(&orig, &back);

        // The binary codec must roundtrip the same stream.
        let bin = caliper_format::binary::to_binary(&ds);
        let ds3 = caliper_format::binary::from_binary(&bin).unwrap();
        prop_assert_eq!(ds3.len(), ds.len());
        let back_bin: Vec<String> = ds3
            .flat_records()
            .map(|r| r.describe(&ds3.store))
            .collect();
        prop_assert_eq!(&orig, &back_bin);
    }

    /// The block-columnar v2 encoding of any dataset must decode to the
    /// same record multiset as the v1 encoding, for every block size and
    /// with or without a footer — and both decodes must re-encode to
    /// byte-identical v1 streams (the dictionaries come back in the same
    /// creation order).
    #[test]
    fn v2_decodes_identically_to_v1(
        labels in prop::collection::vec(arb_label(), 2..5),
        records in prop::collection::vec(
            (
                prop::collection::vec((0usize..4, "[ -~]{0,16}"), 0..5),
                prop::collection::vec((0usize..4, arb_roundtrip_value()), 0..4),
            ),
            0..40,
        ),
        block_records in 1usize..9,
        footer in any::<bool>(),
    ) {
        let ds = build_dataset(&labels, &records);
        let v1 = caliper_format::binary::to_binary(&ds);
        let v2 = caliper_format::to_binary_v2_with(&ds, &V2WriteOptions { block_records, footer });
        let d1 = caliper_format::binary::from_binary(&v1).unwrap();
        let d2 = caliper_format::binary::from_binary(&v2).unwrap();
        prop_assert_eq!(d1.len(), ds.len());
        prop_assert_eq!(d2.len(), ds.len());
        prop_assert_eq!(record_multiset(&d1), record_multiset(&d2));
        prop_assert_eq!(
            caliper_format::binary::to_binary(&d1),
            caliper_format::binary::to_binary(&d2)
        );
    }

    /// Zone-map soundness: a pushdown-filtered decode may drop whole
    /// blocks, but every record the predicate actually matches must
    /// survive — a skipped block can never contain a matching record.
    #[test]
    fn zone_map_skips_never_drop_a_matching_record(
        labels in prop::collection::vec(arb_label(), 2..4),
        records in prop::collection::vec(
            (
                prop::collection::vec((0usize..4, "[a-d]{0,3}"), 0..4),
                prop::collection::vec((0usize..4, arb_roundtrip_value()), 0..4),
            ),
            0..40,
        ),
        block_records in 1usize..8,
        attr_idx in 0usize..4,
        op_idx in 0usize..6,
        raw_literal in arb_roundtrip_value(),
    ) {
        let ds = build_dataset(&labels, &records);
        // Compare against one of the immediate attributes, with the
        // literal coerced to its declared type (the typed-comparison
        // case sema admits for pushdown).
        let literal = match attr_idx {
            0 => Value::str(raw_literal.to_string()),
            1 => Value::Int(raw_literal.to_i64().unwrap_or(0)),
            2 => Value::UInt(raw_literal.to_u64().unwrap_or(0)),
            _ => Value::Float(raw_literal.to_f64().unwrap_or(0.0)),
        };
        let op = [
            PushdownOp::Eq,
            PushdownOp::Ne,
            PushdownOp::Lt,
            PushdownOp::Le,
            PushdownOp::Gt,
            PushdownOp::Ge,
        ][op_idx];
        let pred = Predicate::Cmp {
            attr: format!("imm.{attr_idx}"),
            op,
            value: literal,
        };
        let mut pd = Pushdown::new();
        pd.push(pred.clone());

        let v2 = caliper_format::to_binary_v2_with(
            &ds,
            &V2WriteOptions { block_records, footer: true },
        );
        let mut report = ReadReport::default();
        let filtered = caliper_format::binary::read_binary_into_filtered(
            &v2,
            Dataset::new(),
            ReadPolicy::Strict,
            &mut report,
            Some(&pd),
        )
        .unwrap();
        prop_assert_eq!(report.blocks, ds.len().div_ceil(block_records) as u64);

        let mut matching: Vec<String> = ds
            .flat_records()
            .filter(|r| record_matches(&ds, r, &pred))
            .map(|r| r.describe(&ds.store))
            .collect();
        matching.sort();
        let mut kept_matching: Vec<String> = filtered
            .flat_records()
            .filter(|r| record_matches(&filtered, r, &pred))
            .map(|r| r.describe(&filtered.store))
            .collect();
        kept_matching.sort();
        // Every matching record survives (same multiset on both sides)…
        prop_assert_eq!(&matching, &kept_matching);
        // …and whatever else survives came from the original stream.
        let full = record_multiset(&ds);
        for rec in record_multiset(&filtered) {
            prop_assert!(full.binary_search(&rec).is_ok());
        }
    }

    /// Lenient v2 decode must accept any truncation of a valid stream
    /// without panicking, and longer prefixes can only yield more
    /// records.
    #[test]
    fn v2_truncation_is_lenient_at_every_byte(
        labels in prop::collection::vec(arb_label(), 2..4),
        records in prop::collection::vec(
            (
                prop::collection::vec((0usize..4, "[a-d]{0,3}"), 0..4),
                prop::collection::vec((0usize..4, arb_roundtrip_value()), 0..3),
            ),
            0..12,
        ),
        block_records in 1usize..5,
    ) {
        let ds = build_dataset(&labels, &records);
        let v2 = caliper_format::to_binary_v2_with(
            &ds,
            &V2WriteOptions { block_records, footer: true },
        );
        let mut last = 0usize;
        for cut in 5..=v2.len() {
            match caliper_format::binary::from_binary_with(
                &v2[..cut],
                ReadPolicy::lenient(),
            ) {
                Ok((partial, _)) => {
                    prop_assert!(partial.len() <= ds.len());
                    prop_assert!(partial.len() >= last);
                    last = partial.len();
                }
                Err(_) => prop_assert!(false, "lenient v2 decode failed at byte {cut}"),
            }
        }
    }

    /// CSV quoting roundtrips under a trivial CSV parser for quoted fields.
    #[test]
    fn csv_field_is_parseable(s in "[ -~]{0,32}") {
        let quoted = caliper_format::csv::csv_field(&s);
        let parsed = if let Some(inner) = quoted.strip_prefix('"').and_then(|q| q.strip_suffix('"')) {
            inner.replace("\"\"", "\"")
        } else {
            quoted.clone()
        };
        prop_assert_eq!(parsed, s);
    }
}

/// A dataset whose records are uniquely identifiable: record `i`
/// carries `row=i`, so a decode's surviving records name exactly which
/// source rows they came from.
fn numbered_dataset(records: usize) -> Dataset {
    let mut ds = Dataset::new();
    let kernel = ds.attribute("kernel", ValueType::Str, Properties::NESTED);
    let row = ds.attribute("row", ValueType::Int, Properties::AS_VALUE);
    for i in 0..records {
        let node = ds.tree.get_child(
            NODE_NONE,
            kernel.id(),
            &Value::str(["alpha", "beta", "gamma"][i % 3]),
        );
        let mut rec = SnapshotRecord::new();
        rec.push_node(node);
        rec.push_imm(row.id(), Value::Int(i as i64));
        ds.push(rec);
    }
    ds
}

/// Record lines in decode order (not sorted): positional reasoning
/// about block boundaries needs the stream order preserved.
fn ordered_lines(ds: &Dataset) -> Vec<String> {
    ds.flat_records().map(|r| r.describe(&ds.store)).collect()
}

/// The byte range of block `ordinal`'s payload (past the tag and the
/// length varint), located through the footer index.
fn block_payload_range(bytes: &[u8], ordinal: usize) -> std::ops::Range<usize> {
    let index = caliper_format::read_footer(bytes).expect("v2 stream has a footer");
    let mut pos = index[ordinal].offset as usize + 1; // past TAG_BLOCK
    let mut len = 0u64;
    let mut shift = 0;
    loop {
        let b = bytes[pos];
        pos += 1;
        len |= u64::from(b & 0x7f) << shift;
        if b & 0x80 == 0 {
            break;
        }
        shift += 7;
    }
    pos..pos + len as usize
}

proptest! {
    /// Chaos invariant (blast-radius containment): corrupting bytes
    /// inside ONE v2 block's payload loses at most that block. Lenient
    /// decode must resync at the next length frame, so every record of
    /// every other block survives byte-for-byte; the damaged block
    /// contributes a (possibly altered or empty) middle no larger than
    /// its row count. When the decoder *detects* the damage
    /// (`report.skipped > 0`) the loss is exact: the middle is empty
    /// and precisely the corrupted block's records are gone.
    #[test]
    fn v2_single_block_corruption_loses_at_most_that_block(
        records in 6usize..40,
        block_records in 2usize..6,
        ordinal_seed in any::<u64>(),
        seed in any::<u64>(),
    ) {
        let ds = numbered_dataset(records);
        let bytes = caliper_format::to_binary_v2_with(
            &ds,
            &V2WriteOptions { block_records, footer: true },
        );
        let clean = ordered_lines(&caliper_format::binary::from_binary(&bytes).unwrap());
        let blocks = records.div_ceil(block_records);
        let ordinal = (ordinal_seed % blocks as u64) as usize;
        let start_row = ordinal * block_records;
        let end_row = (start_row + block_records).min(records);

        // Seeded damage confined to the chosen block's payload.
        let range = block_payload_range(&bytes, ordinal);
        let mut corrupt = bytes.clone();
        let mut payload = corrupt[range.clone()].to_vec();
        caliper_faults::corrupt_bytes(caliper_faults::CorruptMode::Bitflip, seed, &mut payload);
        corrupt[range].copy_from_slice(&payload);

        let (back, report) = caliper_format::binary::from_binary_with(
            &corrupt,
            ReadPolicy::lenient(),
        ).unwrap();
        let got = ordered_lines(&back);

        // Blocks before the damaged one decode first and unchanged ...
        prop_assert!(got.len() >= start_row, "lost records before the damaged block");
        prop_assert_eq!(&got[..start_row], &clean[..start_row]);
        // ... blocks after it survive the resync unchanged ...
        let tail = clean.len() - end_row;
        prop_assert!(got.len() <= clean.len());
        prop_assert_eq!(&got[got.len() - tail..], &clean[end_row..]);
        // ... and the damaged block's middle never grows.
        let middle = got.len() - start_row - tail;
        prop_assert!(middle <= end_row - start_row, "damaged block grew");
        prop_assert!(!report.truncated, "payload damage must resync, not truncate");
        if report.skipped > 0 {
            // Detected corruption drops exactly the damaged block.
            prop_assert_eq!(report.skipped, 1);
            prop_assert_eq!(middle, 0, "skipped block left records behind");
        }
    }
}

/// Deterministic companion to the proptest: damage that is *always*
/// detected (an absurd row-count varint) loses exactly the damaged
/// block, for every block ordinal.
#[test]
fn v2_detected_corruption_loses_exactly_the_damaged_block() {
    let records = 23;
    let ds = numbered_dataset(records);
    let bytes = caliper_format::to_binary_v2_with(
        &ds,
        &V2WriteOptions {
            block_records: 4,
            footer: true,
        },
    );
    let clean = ordered_lines(&caliper_format::binary::from_binary(&bytes).unwrap());
    let blocks = caliper_format::read_footer(&bytes).unwrap().len();
    for ordinal in 0..blocks {
        let range = block_payload_range(&bytes, ordinal);
        let mut corrupt = bytes.clone();
        corrupt[range.start] = 0xff; // row count becomes a torn varint
        let (back, report) =
            caliper_format::binary::from_binary_with(&corrupt, ReadPolicy::lenient()).unwrap();
        let got = ordered_lines(&back);
        let mut expected = clean.clone();
        let start = ordinal * 4;
        let end = (start + 4).min(records);
        expected.drain(start..end);
        assert_eq!(got, expected, "block {ordinal}");
        assert_eq!(report.skipped, 1, "block {ordinal}");
        assert!(
            caliper_format::binary::from_binary(&corrupt).is_err(),
            "strict must reject block {ordinal}"
        );
    }
}
