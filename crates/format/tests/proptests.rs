//! Property-based tests: the `.cali` codec must roundtrip arbitrary
//! datasets, and the escaping layer must roundtrip arbitrary strings.

use caliper_data::{Properties, SnapshotRecord, Value, ValueType, NODE_NONE};
use caliper_format::{cali, escape, Dataset};
use proptest::prelude::*;

fn arb_label() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9._]{0,15}"
}

/// Values whose textual form roundtrips exactly (no NaN).
fn arb_roundtrip_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        "[ -~]{0,32}".prop_map(Value::str), // printable ASCII incl. , = \
        any::<i64>().prop_map(Value::Int),
        any::<u64>().prop_map(Value::UInt),
        any::<i32>().prop_map(|i| Value::Float(i as f64 / 8.0)),
        any::<bool>().prop_map(Value::Bool),
    ]
}

proptest! {
    #[test]
    fn escape_roundtrips(s in "\\PC*") {
        prop_assert_eq!(escape::unescape(&escape::escape(&s)), s);
    }

    #[test]
    fn escaped_strings_are_single_line(s in "\\PC*") {
        prop_assert!(!escape::escape(&s).contains('\n'));
    }

    /// Build a random dataset (random nesting stacks + immediates),
    /// serialize, parse, and compare the expanded record streams.
    #[test]
    fn cali_roundtrip(
        labels in prop::collection::vec(arb_label(), 2..5),
        records in prop::collection::vec(
            (
                prop::collection::vec((0usize..4, "[ -~]{0,16}"), 0..5), // stack pushes
                prop::collection::vec((0usize..4, arb_roundtrip_value()), 0..4), // immediates
            ),
            0..20,
        ),
    ) {
        let mut ds = Dataset::new();
        let nested: Vec<_> = labels
            .iter()
            .enumerate()
            .map(|(i, l)| ds.attribute(&format!("n.{i}.{l}"), ValueType::Str, Properties::NESTED))
            .collect();
        let imm: Vec<_> = [
            ValueType::Str,
            ValueType::Int,
            ValueType::UInt,
            ValueType::Float,
        ]
        .iter()
        .enumerate()
        .map(|(i, t)| ds.attribute(&format!("imm.{i}"), *t, Properties::AS_VALUE))
        .collect();

        for (stack, imms) in &records {
            let mut node = NODE_NONE;
            for (ai, v) in stack {
                let attr = &nested[ai % nested.len()];
                node = ds.tree.get_child(node, attr.id(), &Value::str(v.as_str()));
            }
            let mut rec = SnapshotRecord::new();
            if node != NODE_NONE {
                rec.push_node(node);
            }
            for (ai, v) in imms {
                // Coerce the value to the immediate attribute's type so
                // the stream stays type-faithful.
                let attr = &imm[ai % imm.len()];
                let coerced = match attr.value_type() {
                    ValueType::Str => Value::str(v.to_string()),
                    ValueType::Int => Value::Int(v.to_i64().unwrap_or(0)),
                    ValueType::UInt => Value::UInt(v.to_u64().unwrap_or(0)),
                    ValueType::Float => Value::Float(v.to_f64().unwrap_or(0.0)),
                    ValueType::Bool => Value::Bool(v.is_truthy()),
                };
                rec.push_imm(attr.id(), coerced);
            }
            ds.push(rec);
        }

        let bytes = cali::to_bytes(&ds);
        let ds2 = cali::from_bytes(&bytes).unwrap();
        prop_assert_eq!(ds2.len(), ds.len());

        let orig: Vec<String> = ds.flat_records().map(|r| r.describe(&ds.store)).collect();
        let back: Vec<String> = ds2.flat_records().map(|r| r.describe(&ds2.store)).collect();
        prop_assert_eq!(&orig, &back);

        // The binary codec must roundtrip the same stream.
        let bin = caliper_format::binary::to_binary(&ds);
        let ds3 = caliper_format::binary::from_binary(&bin).unwrap();
        prop_assert_eq!(ds3.len(), ds.len());
        let back_bin: Vec<String> = ds3
            .flat_records()
            .map(|r| r.describe(&ds3.store))
            .collect();
        prop_assert_eq!(&orig, &back_bin);
    }

    /// CSV quoting roundtrips under a trivial CSV parser for quoted fields.
    #[test]
    fn csv_field_is_parseable(s in "[ -~]{0,32}") {
        let quoted = caliper_format::csv::csv_field(&s);
        let parsed = if let Some(inner) = quoted.strip_prefix('"').and_then(|q| q.strip_suffix('"')) {
            inner.replace("\"\"", "\"")
        } else {
            quoted.clone()
        };
        prop_assert_eq!(parsed, s);
    }
}
