//! Integration tests of the extension features (beyond the paper's
//! §IV implementation): statistics operators, percentiles, flamegraph
//! output, the report service, synthetic counters, and canonical query
//! rendering.

use caliper_repro::prelude::*;

fn profile_with_durations() -> Dataset {
    // Event trace of a kernel with a known duration distribution:
    // 1..=100 microseconds.
    let caliper = Caliper::with_clock(Config::event_trace(), Clock::virtual_clock());
    let kernel = caliper.region_attribute("kernel");
    let mut scope = caliper.make_thread_scope();
    for us in 1..=100u64 {
        scope.begin(&kernel, "work");
        scope.advance_time(us * 1_000);
        scope.end(&kernel).unwrap();
    }
    scope.flush();
    caliper.take_dataset()
}

#[test]
fn stddev_and_variance_over_trace() {
    let ds = profile_with_durations();
    let result = run_query(
        &ds,
        "AGGREGATE avg(time.duration), variance(time.duration), stddev(time.duration) \
         WHERE kernel GROUP BY kernel",
    )
    .unwrap();
    let get = |label: &str| -> f64 {
        let attr = result.store.find(label).unwrap();
        result.records[0].get(attr.id()).unwrap().to_f64().unwrap()
    };
    // Uniform 1..=100: mean 50.5, population variance (n^2-1)/12 = 833.25.
    assert!((get("avg#time.duration") - 50.5).abs() < 1e-9);
    assert!((get("variance#time.duration") - 833.25).abs() < 1e-6);
    assert!((get("stddev#time.duration") - 833.25f64.sqrt()).abs() < 1e-6);
}

#[test]
fn percentiles_over_trace() {
    let ds = profile_with_durations();
    let result = run_query(
        &ds,
        "AGGREGATE percentile(time.duration, 50), percentile(time.duration, 95) \
         WHERE kernel GROUP BY kernel",
    )
    .unwrap();
    let get = |label: &str| -> f64 {
        let attr = result.store.find(label).unwrap();
        result.records[0].get(attr.id()).unwrap().to_f64().unwrap()
    };
    let p50 = get("percentile.50#time.duration");
    let p95 = get("percentile.95#time.duration");
    assert!((p50 - 50.5).abs() < 1.0, "p50 {p50}");
    assert!((p95 - 95.0).abs() < 1.5, "p95 {p95}");
    assert!(p50 < p95);
}

#[test]
fn flamegraph_output_end_to_end() {
    // Build nested function stacks, render folded stacks.
    let caliper = Caliper::with_clock(
        Config::event_aggregate("function", "sum(time.duration)"),
        Clock::virtual_clock(),
    );
    let function = caliper.region_attribute("function");
    let mut scope = caliper.make_thread_scope();
    scope.begin(&function, "main");
    scope.begin(&function, "solve");
    scope.advance_time(30_000);
    scope.end(&function).unwrap();
    scope.begin(&function, "io");
    scope.advance_time(10_000);
    scope.end(&function).unwrap();
    scope.end(&function).unwrap();
    scope.flush();
    let ds = caliper.take_dataset();

    let result = run_query(
        &ds,
        "SELECT function, sum#time.duration WHERE function FORMAT flamegraph",
    )
    .unwrap();
    let folded = result.render();
    // time.duration is in microseconds: 30 us in solve, 10 us in io.
    assert!(folded.contains("main;solve 30"), "{folded}");
    assert!(folded.contains("main;io 10"), "{folded}");
}

#[test]
fn counters_aggregate_like_time() {
    let config = Config::new()
        .set("services", "event,timer,counters,aggregate")
        .set("counters.ghz", "1.0")
        .set("counters.ipc", "1.0")
        .set("aggregate.key", "kernel")
        .set(
            "aggregate.ops",
            "sum(time.duration),sum(cpu.instructions)",
        );
    let caliper = Caliper::with_clock(config, Clock::virtual_clock());
    let kernel = caliper.region_attribute("kernel");
    let mut scope = caliper.make_thread_scope();
    for _ in 0..10 {
        scope.begin(&kernel, "work");
        scope.advance_time(1_000);
        scope.end(&kernel).unwrap();
    }
    scope.flush();
    let ds = caliper.take_dataset();
    let result = run_query(
        &ds,
        "SELECT kernel, sum#time.duration, sum#cpu.instructions WHERE kernel",
    )
    .unwrap();
    let us = result.store.find("sum#time.duration").unwrap();
    let instructions = result.store.find("sum#cpu.instructions").unwrap();
    let rec = &result.records[0];
    // 10 x 1000 ns at 1 GHz / IPC 1 -> 10000 instructions; 10 us total.
    assert_eq!(rec.get(us.id()).unwrap().to_f64(), Some(10.0));
    assert_eq!(rec.get(instructions.id()).unwrap().to_u64(), Some(10_000));
}

#[test]
fn canonical_rendering_survives_the_full_pipeline() {
    // Render a parsed query to text, re-parse, run both against the
    // same data: identical output.
    let ds = profile_with_durations();
    let original = "AGGREGATE count, sum(time.duration) AS total \
                    WHERE kernel != idle GROUP BY kernel ORDER BY total desc";
    let spec = parse_query(original).unwrap();
    let rendered = spec.to_string();
    let a = run_query(&ds, original).unwrap().render();
    let b = run_query(&ds, &rendered).unwrap().render();
    assert_eq!(a, b, "canonical form '{rendered}' diverged");
}

#[test]
fn report_service_prints_profile_at_exit() {
    let config = Config::event_aggregate("kernel", "count,sum(time.duration)")
        .set("services", "event,timer,aggregate,report")
        .set(
            "report.config",
            "AGGREGATE sum(sum#time.duration) AS time WHERE kernel \
             GROUP BY kernel ORDER BY time desc",
        );
    let caliper = Caliper::with_clock(config, Clock::virtual_clock());
    let kernel = caliper.region_attribute("kernel");
    let mut scope = caliper.make_thread_scope();
    for (name, us) in [("fast", 1u64), ("slow", 100)] {
        scope.begin(&kernel, name);
        scope.advance_time(us * 1_000);
        scope.end(&kernel).unwrap();
    }
    scope.flush();
    let report = caliper.report().unwrap();
    let slow_line = report.lines().position(|l| l.contains("slow")).unwrap();
    let fast_line = report.lines().position(|l| l.contains("fast")).unwrap();
    assert!(slow_line < fast_line, "{report}");
}
