//! End-to-end reproduction of the paper's Listing 1 / §III-B example,
//! asserting the exact numbers of the published result table.

use caliper_repro::prelude::*;

/// Run the Listing 1 program under a config; `foo` runs 10 + 30 time
/// units, `bar` 10, per iteration, 4 iterations.
fn run_listing1(config: Config) -> Dataset {
    let caliper = Caliper::with_clock(config, Clock::virtual_clock());
    let function = Annotation::new(&caliper, "function");
    let iteration = Annotation::value_attribute(&caliper, "loop.iteration");
    let mut scope = caliper.make_thread_scope();
    for i in 0..4i64 {
        iteration.begin(&mut scope, i);
        for (name, units) in [("foo", 10u64), ("foo", 30), ("bar", 10)] {
            function.begin(&mut scope, name);
            scope.advance_time(units * 1_000);
            function.end(&mut scope);
        }
        iteration.end(&mut scope);
    }
    scope.flush();
    caliper.take_dataset()
}

fn cell(result: &QueryResult, function: Option<&str>, iteration: i64, column: &str) -> Option<f64> {
    let f = result.store.find("function")?;
    let i = result.store.find("loop.iteration")?;
    let c = result.store.find(column)?;
    result
        .records
        .iter()
        .find(|r| {
            let func_matches = match function {
                Some(name) => r.get(f.id()) == Some(&Value::str(name)),
                None => !r.contains(f.id()),
            };
            func_matches && r.get(i.id()) == Some(&Value::Int(iteration))
        })
        .and_then(|r| r.get(c.id())?.to_f64())
}

#[test]
fn paper_table_values_from_online_aggregation() {
    let profile = run_listing1(Config::event_aggregate(
        "function,loop.iteration",
        "count,sum(time.duration)",
    ));
    let result = run_query(&profile, "SELECT *").unwrap();

    for iteration in 0..4 {
        // The paper's table: foo has sum#time 40 in each iteration, bar 10.
        assert_eq!(
            cell(&result, Some("foo"), iteration, "sum#time.duration"),
            Some(40.0),
            "foo time in iteration {iteration}"
        );
        assert_eq!(
            cell(&result, Some("foo"), iteration, "aggregate.count"),
            Some(2.0)
        );
        assert_eq!(
            cell(&result, Some("bar"), iteration, "sum#time.duration"),
            Some(10.0)
        );
        assert_eq!(
            cell(&result, Some("bar"), iteration, "aggregate.count"),
            Some(1.0)
        );
        // "the result includes separate entries for events where only
        // one or none of the key attributes were set": begin-events
        // carry the iteration but no function yet.
        assert!(cell(&result, None, iteration, "aggregate.count").is_some());
    }
}

#[test]
fn collapsing_the_key_matches_the_paper() {
    // §III-B second scheme: remove loop.iteration from the key.
    let profile = run_listing1(Config::event_aggregate(
        "function",
        "count,sum(time.duration)",
    ));
    let result = run_query(&profile, "SELECT *").unwrap();
    let f = result.store.find("function").unwrap();
    let sum = result.store.find("sum#time.duration").unwrap();
    let foo = result
        .records
        .iter()
        .find(|r| r.get(f.id()) == Some(&Value::str("foo")))
        .unwrap();
    assert_eq!(foo.get(sum.id()).unwrap().to_f64(), Some(160.0)); // 4 x 40
    let bar = result
        .records
        .iter()
        .find(|r| r.get(f.id()) == Some(&Value::str("bar")))
        .unwrap();
    assert_eq!(bar.get(sum.id()).unwrap().to_f64(), Some(40.0)); // 4 x 10
}

#[test]
fn offline_requery_over_trace_gives_the_same_table() {
    // §VI-F: "the combination of on-line and off-line aggregation
    // leaves multiple ways to obtain the same end result" — aggregate
    // the full trace off-line instead.
    let trace = run_listing1(Config::event_trace());
    let result = run_query(
        &trace,
        "AGGREGATE count, sum(time.duration) GROUP BY function, loop.iteration",
    )
    .unwrap();
    let f = result.store.find("function").unwrap();
    let i = result.store.find("loop.iteration").unwrap();
    let sum = result.store.find("sum#time.duration").unwrap();
    let foo2 = result
        .records
        .iter()
        .find(|r| {
            r.get(f.id()) == Some(&Value::str("foo")) && r.get(i.id()) == Some(&Value::Int(2))
        })
        .unwrap();
    assert_eq!(foo2.get(sum.id()).unwrap().to_f64(), Some(40.0));
}

#[test]
fn online_and_offline_paths_agree() {
    // The same end result through both paths, numerically identical.
    let online_profile = run_listing1(Config::event_aggregate(
        "function,loop.iteration",
        "sum(time.duration)",
    ));
    let online = run_query(
        &online_profile,
        "AGGREGATE sum(sum#time.duration) AS t WHERE function GROUP BY function ORDER BY function",
    )
    .unwrap();

    let trace = run_listing1(Config::event_trace());
    let offline = run_query(
        &trace,
        "AGGREGATE sum(time.duration) AS t WHERE function GROUP BY function ORDER BY function",
    )
    .unwrap();

    assert_eq!(online.to_table().render(), offline.to_table().render());
}
