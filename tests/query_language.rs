//! Integration tests of the full description language against data
//! produced by the real runtime — every clause, across crates.

use caliper_repro::prelude::*;

/// A profile with kernels, ranks, AMR levels and MPI functions baked in.
fn sample_profile() -> Dataset {
    let app = CleverLeaf::new(CleverLeafParams {
        timesteps: 6,
        ranks: 3,
        ..CleverLeafParams::case_study()
    });
    let config = Config::event_aggregate(
        "kernel,mpi.function,mpi.rank,amr.level,iteration#mainloop",
        "count,sum(time.duration),min(time.duration),max(time.duration)",
    );
    let datasets = app.run_all(&config);
    let mut merged = Dataset::new();
    for ds in &datasets {
        let bytes = cali::to_bytes(ds);
        let mut r = caliper_repro::format::CaliReader::into_dataset(merged);
        r.read_stream(std::io::BufReader::new(&bytes[..])).unwrap();
        merged = r.finish();
    }
    merged
}

#[test]
fn where_not_excludes_mpi_records() {
    let ds = sample_profile();
    let all = run_query(&ds, "AGGREGATE sum(sum#time.duration) AS t GROUP BY mpi.rank").unwrap();
    let no_mpi = run_query(
        &ds,
        "AGGREGATE sum(sum#time.duration) AS t WHERE not(mpi.function) GROUP BY mpi.rank",
    )
    .unwrap();
    let mpi_only = run_query(
        &ds,
        "AGGREGATE sum(sum#time.duration) AS t WHERE mpi.function GROUP BY mpi.rank",
    )
    .unwrap();
    // Partition: all = not(mpi) + mpi, per rank.
    let t = |result: &QueryResult, rank: i64| -> f64 {
        let r = result.store.find("mpi.rank").unwrap();
        let v = result.store.find("t").unwrap();
        result
            .records
            .iter()
            .find(|rec| rec.get(r.id()).and_then(|v| v.to_i64()) == Some(rank))
            .and_then(|rec| rec.get(v.id())?.to_f64())
            .unwrap_or(0.0)
    };
    for rank in 0..3 {
        let total = t(&all, rank);
        let split = t(&no_mpi, rank) + t(&mpi_only, rank);
        assert!(
            (total - split).abs() < 1e-6 * total.max(1.0),
            "rank {rank}: {total} vs {split}"
        );
    }
}

#[test]
fn comparison_filters_cut_iterations() {
    let ds = sample_profile();
    let early = run_query(
        &ds,
        "AGGREGATE sum(aggregate.count) AS n WHERE iteration#mainloop < 3 GROUP BY iteration#mainloop",
    )
    .unwrap();
    assert_eq!(early.records.len(), 3);
    let exact = run_query(
        &ds,
        "AGGREGATE sum(aggregate.count) AS n WHERE iteration#mainloop = 2 GROUP BY iteration#mainloop",
    )
    .unwrap();
    assert_eq!(exact.records.len(), 1);
}

#[test]
fn order_by_sorts_descending() {
    let ds = sample_profile();
    let result = run_query(
        &ds,
        "AGGREGATE sum(sum#time.duration) AS t WHERE kernel GROUP BY kernel ORDER BY t desc",
    )
    .unwrap();
    let t = result.store.find("t").unwrap();
    let values: Vec<f64> = result
        .records
        .iter()
        .filter_map(|r| r.get(t.id())?.to_f64())
        .collect();
    assert!(values.windows(2).all(|w| w[0] >= w[1]));
    // calc-dt dominates, so it must be first.
    let k = result.store.find("kernel").unwrap();
    assert_eq!(
        result.records[0].get(k.id()),
        Some(&Value::str("calc-dt"))
    );
}

#[test]
fn select_controls_columns_and_order() {
    let ds = sample_profile();
    let result = run_query(
        &ds,
        "AGGREGATE sum(aggregate.count) WHERE kernel GROUP BY kernel \
         SELECT sum#aggregate.count, kernel",
    )
    .unwrap();
    let cols: Vec<&str> = result.columns.iter().map(|a| a.name()).collect();
    assert_eq!(cols, vec!["sum#aggregate.count", "kernel"]);
}

#[test]
fn let_scale_converts_units_through_aggregation() {
    let ds = sample_profile();
    let us = run_query(
        &ds,
        "AGGREGATE sum(sum#time.duration) AS t WHERE kernel=calc-dt GROUP BY kernel",
    )
    .unwrap();
    let ms = run_query(
        &ds,
        "LET ms = scale(sum#time.duration, 0.001) \
         AGGREGATE sum(ms) AS t WHERE kernel=calc-dt GROUP BY kernel",
    )
    .unwrap();
    let value = |r: &QueryResult| {
        let t = r.store.find("t").unwrap();
        r.records[0].get(t.id()).unwrap().to_f64().unwrap()
    };
    let ratio = value(&us) / value(&ms);
    assert!((ratio - 1000.0).abs() < 1e-6 * 1000.0, "ratio {ratio}");
}

#[test]
fn every_output_format_renders_the_same_data() {
    let ds = sample_profile();
    let base = "AGGREGATE sum(aggregate.count) WHERE kernel GROUP BY kernel";
    let table = run_query(&ds, &format!("{base} FORMAT table")).unwrap().render();
    let csv = run_query(&ds, &format!("{base} FORMAT csv")).unwrap().render();
    let json = run_query(&ds, &format!("{base} FORMAT json")).unwrap().render();
    let expand = run_query(&ds, &format!("{base} FORMAT expand")).unwrap().render();
    for out in [&table, &csv, &json, &expand] {
        assert!(out.contains("calc-dt"), "missing kernel in: {out}");
    }
    // CSV has a header plus one line per kernel (10) + unannotated-free
    // (WHERE kernel excludes records without a kernel).
    assert_eq!(csv.lines().count(), 11);

    // cali format re-parses and re-queries identically.
    let cali_text = run_query(&ds, &format!("{base} FORMAT cali")).unwrap().render();
    let back = cali::from_bytes(cali_text.as_bytes()).unwrap();
    let requery = run_query(
        &back,
        "SELECT kernel, sum#aggregate.count ORDER BY kernel",
    )
    .unwrap();
    assert_eq!(requery.records.len(), 10);
}

#[test]
fn histogram_over_profile_data() {
    let ds = sample_profile();
    let result = run_query(
        &ds,
        "AGGREGATE histogram(sum#time.duration, 0, 1000000, 4) WHERE kernel GROUP BY kernel",
    )
    .unwrap();
    let h = result.store.find("histogram#sum#time.duration").unwrap();
    for rec in &result.records {
        let text = rec.get(h.id()).unwrap().to_string();
        // "under|b0 b1 b2 b3|over"
        let parts: Vec<&str> = text.split('|').collect();
        assert_eq!(parts.len(), 3, "{text}");
        assert_eq!(parts[1].split(' ').count(), 4);
    }
}

#[test]
fn group_by_nested_attribute_uses_paths() {
    // Nested `function` values group by their full path.
    let caliper = Caliper::with_clock(
        Config::event_aggregate("function", "count"),
        Clock::virtual_clock(),
    );
    let function = caliper.region_attribute("function");
    let mut scope = caliper.make_thread_scope();
    scope.begin(&function, "main");
    scope.begin(&function, "solve");
    scope.end(&function).unwrap();
    scope.begin(&function, "io");
    scope.end(&function).unwrap();
    scope.end(&function).unwrap();
    scope.flush();
    let ds = caliper.take_dataset();
    let result = run_query(&ds, "SELECT function, aggregate.count ORDER BY function").unwrap();
    let rendered = result.render();
    assert!(rendered.contains("main/solve"), "{rendered}");
    assert!(rendered.contains("main/io"), "{rendered}");
}

#[test]
fn global_metadata_is_queryable_per_file() {
    let ds = sample_profile();
    // merge kept per-rank globals; the last writer wins per label, but
    // all globals remain in the dataset.
    assert!(ds.global("mpi.rank").is_some());
    assert_eq!(
        ds.global("experiment"),
        Some(Value::str("cleverleaf-triple-point"))
    );
}
