//! Cross-process aggregation integration tests: runtime → `.cali`
//! files → serial and parallel off-line aggregation (§IV-C, §V-C).

use std::path::PathBuf;
use std::sync::Arc;

use cali_cli::{parallel_query, read_files};
use caliper_repro::prelude::*;

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "caliper-it-{name}-{}",
        std::process::id()
    ));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Run the CleverLeaf proxy and write one .cali file per rank.
fn write_rank_files(dir: &std::path::Path, ranks: usize) -> Vec<PathBuf> {
    let app = CleverLeaf::new(CleverLeafParams {
        timesteps: 8,
        ranks,
        ..CleverLeafParams::case_study()
    });
    let config = Config::event_aggregate(
        "kernel,mpi.function,mpi.rank,iteration#mainloop",
        "count,sum(time.duration)",
    );
    let datasets = app.run_all(&config);
    datasets
        .iter()
        .enumerate()
        .map(|(rank, ds)| {
            let path = dir.join(format!("rank-{rank:03}.cali"));
            cali::write_file(ds, &path).unwrap();
            path
        })
        .collect()
}

#[test]
fn file_roundtrip_preserves_query_results() {
    let dir = temp_dir("roundtrip");
    let app = CleverLeaf::new(CleverLeafParams {
        timesteps: 5,
        ranks: 2,
        ..CleverLeafParams::case_study()
    });
    let config = Config::event_aggregate("kernel", "count,sum(time.duration)");
    let datasets = app.run_all(&config);

    let query = "AGGREGATE sum(sum#time.duration) WHERE kernel GROUP BY kernel";
    let direct = run_query(&datasets[0], query).unwrap();

    let path = dir.join("rank0.cali");
    cali::write_file(&datasets[0], &path).unwrap();
    let reloaded = cali::read_file(&path).unwrap();
    let roundtripped = run_query(&reloaded, query).unwrap();

    assert_eq!(
        direct.to_table().render(),
        roundtripped.to_table().render()
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn parallel_query_equals_serial_query() {
    let dir = temp_dir("parallel");
    let paths = write_rank_files(&dir, 7);

    let query = "AGGREGATE sum(sum#time.duration), sum(aggregate.count) \
                 WHERE kernel GROUP BY kernel";

    let merged = read_files(&paths).unwrap();
    let serial = run_query(&merged, query).unwrap();

    for np in [1, 2, 3, 7] {
        let mut per_rank: Vec<Vec<PathBuf>> = vec![Vec::new(); np];
        for (i, p) in paths.iter().enumerate() {
            per_rank[i % np].push(p.clone());
        }
        let (parallel, timings) = parallel_query(query, per_rank).unwrap();
        assert_eq!(
            serial.to_table().render(),
            parallel.to_table().render(),
            "np = {np}"
        );
        assert_eq!(timings.local_s.len(), np);
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn per_rank_data_survives_cross_process_merge() {
    let dir = temp_dir("per-rank");
    let ranks = 4;
    let paths = write_rank_files(&dir, ranks);
    let merged = read_files(&paths).unwrap();

    // Every rank's data must be present and distinguishable by mpi.rank.
    // WHERE mpi.rank: the very first event snapshot of each process
    // fires before mpi.rank is placed on the blackboard and forms a
    // separate no-rank entry (as the paper's §III-B table shows for
    // partially-set keys); exclude it here.
    let result = run_query(
        &merged,
        "AGGREGATE sum(aggregate.count) WHERE mpi.rank GROUP BY mpi.rank ORDER BY mpi.rank",
    )
    .unwrap();
    assert_eq!(result.records.len(), ranks);
    let rank_attr = result.store.find("mpi.rank").unwrap();
    let ranks_seen: Vec<i64> = result
        .records
        .iter()
        .filter_map(|r| r.get(rank_attr.id())?.to_i64())
        .collect();
    assert_eq!(ranks_seen, vec![0, 1, 2, 3]);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn two_stage_aggregation_matches_single_stage() {
    // On-line per-rank aggregation + off-line cross-rank summation must
    // equal off-line aggregation over the full per-rank traces.
    let params = CleverLeafParams {
        timesteps: 4,
        ranks: 3,
        ..CleverLeafParams::case_study()
    };
    let app = CleverLeaf::new(params);

    // Path 1: online aggregation, then offline sum.
    let online = app.run_all(&Config::event_aggregate("kernel", "sum(time.duration)"));
    let mut merged_online = Dataset::new();
    for ds in &online {
        let bytes = cali::to_bytes(ds);
        let mut r = caliper_repro::format::CaliReader::into_dataset(merged_online);
        r.read_stream(std::io::BufReader::new(&bytes[..])).unwrap();
        merged_online = r.finish();
    }
    let a = run_query(
        &merged_online,
        "AGGREGATE sum(sum#time.duration) AS t WHERE kernel GROUP BY kernel ORDER BY kernel",
    )
    .unwrap();

    // Path 2: full traces, aggregated offline in one step.
    let traces = app.run_all(&Config::event_trace());
    let mut merged_traces = Dataset::new();
    for ds in &traces {
        let bytes = cali::to_bytes(ds);
        let mut r = caliper_repro::format::CaliReader::into_dataset(merged_traces);
        r.read_stream(std::io::BufReader::new(&bytes[..])).unwrap();
        merged_traces = r.finish();
    }
    let b = run_query(
        &merged_traces,
        "AGGREGATE sum(time.duration) AS t WHERE kernel GROUP BY kernel ORDER BY kernel",
    )
    .unwrap();

    assert_eq!(a.to_table().render(), b.to_table().render());
}

#[test]
fn tree_reduction_inside_mpisim_matches_pipeline_merge() {
    // Drive the reduction through the mpisim substrate directly.
    let params = ParaDisParams {
        iterations: 3,
        ..Default::default()
    };
    let datasets: Vec<Dataset> = (0..6)
        .map(|r| caliper_repro::apps::paradis::generate_rank(&params, r))
        .collect();
    let query = "AGGREGATE sum(sum#time.duration) GROUP BY kernel";
    let spec = parse_query(query).unwrap();

    // Reference: sequential merge.
    let mut reference: Option<Pipeline> = None;
    for ds in &datasets {
        let mut p = Pipeline::new(spec.clone(), Arc::clone(&ds.store));
        p.process_dataset(ds);
        match &mut reference {
            Some(root) => root.merge(p),
            None => reference = Some(p),
        }
    }
    let reference = reference.unwrap().finish().to_table().render();

    // mpisim: one rank per dataset, reduce_tree over pipelines.
    let datasets = Arc::new(datasets);
    let spec = Arc::new(spec);
    let results = caliper_repro::mpi::run(6, move |mut comm| {
        let ds = &datasets[comm.rank()];
        let mut p = Pipeline::new((*spec).clone(), Arc::clone(&ds.store));
        p.process_dataset(ds);
        caliper_repro::mpi::reduce_tree(&mut comm, p, |mut a, b| {
            a.merge(b);
            a
        })
        .unwrap()
    });
    let from_tree = results
        .into_iter()
        .next()
        .unwrap()
        .expect("root result")
        .finish()
        .to_table()
        .render();

    assert_eq!(reference, from_tree);
}
