#!/bin/sh
# Lint every documentation-embedded CalQL query: extract ```calql
# fenced blocks from the docs (each block is one query; lines are
# joined), run `cali-query --check` over each, and fail on any
# diagnostic. Runs schema-less — doc examples reference hypothetical
# application attributes — so structural checks apply but unknown-name
# checks are skipped.
#
# Usage: scripts/lint_doc_queries.sh [path/to/cali-query]
set -eu
cd "$(dirname "$0")/.."

query_bin="${1:-./target/release/cali-query}"
if [ ! -x "$query_bin" ]; then
    echo "lint_doc_queries.sh: $query_bin not built (cargo build --release -p cali-cli)" >&2
    exit 1
fi

status=0
checked=0
for doc in README.md docs/*.md; do
    [ -f "$doc" ] || continue
    # Emit "<file>:<line>:<joined query>" for each ```calql block.
    extracted=$(awk -v file="$doc" '
        /^```calql[ \t]*$/ { collecting = 1; start = NR + 1; q = ""; next }
        /^```[ \t]*$/ && collecting {
            collecting = 0
            if (q != "") printf "%s:%d:%s\n", file, start, q
            next
        }
        collecting { gsub(/\r/, ""); q = (q == "" ? $0 : q " " $0) }
    ' "$doc")
    [ -n "$extracted" ] || continue
    while IFS= read -r entry; do
        src=${entry%%:*}
        rest=${entry#*:}
        line=${rest%%:*}
        q=${rest#*:}
        checked=$((checked + 1))
        if ! out=$("$query_bin" -q "$q" --check 2>/dev/null); then
            echo "lint_doc_queries.sh: $src:$line: query fails --check:" >&2
            printf '%s\n' "$out" >&2
            status=1
        elif [ -n "$out" ]; then
            # Warnings exit 2 (caught above); anything printed on a
            # zero exit would be new behavior worth failing loudly on.
            echo "lint_doc_queries.sh: $src:$line: unexpected output:" >&2
            printf '%s\n' "$out" >&2
            status=1
        fi
    done <<EOF
$extracted
EOF
done

if [ "$checked" -eq 0 ]; then
    echo "lint_doc_queries.sh: no \`\`\`calql blocks found — extraction broken?" >&2
    exit 1
fi
echo "lint_doc_queries.sh: $checked doc queries checked"
exit "$status"
