#!/bin/sh
# Full local gate: release build, test suite, lint pass, a rustdoc pass
# with warnings (missing_docs among them) promoted to errors, and a
# failure-injection smoke run of the fault-tolerant pipeline.
set -eu
cd "$(dirname "$0")/.."

cargo build --release --workspace
cargo test -q
cargo clippy --workspace --all-targets -q -- -D warnings
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace

# Unsafe-code gate: every crate root (workspace and vendored shims)
# must carry #![forbid(unsafe_code)], and no source line may use
# `unsafe` at all — the attribute makes the compiler enforce it, the
# grep catches a root file losing the attribute.
for f in src/lib.rs crates/*/src/lib.rs vendor/*/src/lib.rs; do
    grep -q '#!\[forbid(unsafe_code)\]' "$f" || {
        echo "check.sh: $f is missing #![forbid(unsafe_code)]" >&2
        exit 1
    }
done
if grep -rn --include='*.rs' 'unsafe' src crates vendor | grep -v 'forbid(unsafe_code)'; then
    echo "check.sh: unsafe code found (listed above)" >&2
    exit 1
fi

# Static-analysis gate: every golden check fixture must produce its
# pinned diagnostics (asserted byte-for-byte by the check_golden test
# in `cargo test` above); here, re-assert the exit-code contract over
# the fixtures with the release binary, and lint every doc-embedded
# query.
lint_query=./target/release/cali-query
golden=crates/cli/tests/golden
for fixture in "$golden"/checks/*.calql; do
    q=$(grep -v '^#' "$fixture" | tr '\n' ' ')
    rc=0
    "$lint_query" -q "$q" --check "$golden"/data/rank0.cali "$golden"/data/rank1.cali \
        >/dev/null 2>&1 || rc=$?
    case "$fixture" in
        */clean.calql) want=0 ;;
        */unused-let.calql|*/self-referential-let.calql|*/where-type-mismatch.calql|*/pushdown-ineligible.calql) want=2 ;;
        *) want=1 ;;
    esac
    if [ "$rc" -ne "$want" ]; then
        echo "check.sh: --check on $fixture exited $rc, expected $want" >&2
        exit 1
    fi
done
scripts/lint_doc_queries.sh "$lint_query"

# Failure-injection smoke: a corrupt corpus must be salvageable with
# --lenient (and fatal without), and a killed rank must leave fig4's
# resilient reduction with an honest coverage report (asserted inside
# the harness).
smoke=$(mktemp -d)
trap 'rm -rf "$smoke"' EXIT
printf '__rec=attr,id=0,name=kernel,type=string,prop=default\n__rec=ctx,attr=0,data=ok\n' \
    > "$smoke/good.cali"
printf '__rec=attr,id=0,name=kernel,type=string,prop=default\n__rec=ctx,attr=99,data=broken\n__rec=ctx,attr=0,data=ok\n' \
    > "$smoke/bad.cali"
if cargo run -q --release -p cali-cli --bin cali-query -- \
    -q "AGGREGATE count GROUP BY kernel" "$smoke/good.cali" "$smoke/bad.cali" \
    >/dev/null 2>&1; then
    echo "check.sh: strict read of a corrupt corpus unexpectedly succeeded" >&2
    exit 1
fi
# Lenient over partial data succeeds with the distinct exit code 2.
rc=0
cargo run -q --release -p cali-cli --bin cali-query -- \
    --lenient --max-groups 8 -q "AGGREGATE count GROUP BY kernel" \
    "$smoke/good.cali" "$smoke/bad.cali" > "$smoke/lenient.out" 2>/dev/null || rc=$?
if [ "$rc" -ne 2 ]; then
    echo "check.sh: lenient read over partial data exited $rc, expected 2" >&2
    exit 1
fi
grep -q "ok" "$smoke/lenient.out"
cargo run -q --release -p caliper-bench --bin fig4 -- --quick --max-np 8 --kill 3 \
    > /dev/null

# Event-engine scale smoke: a 2048-rank resilient tree reduction with a
# seeded kill plan must finish inside a strict wall-clock budget (a
# scheduler regression toward thread-per-rank cost blows it) and be
# byte-identical across runs and across worker-pool sizes.
fig4=./target/release/fig4
scale_start=$(date +%s)
"$fig4" --ranks 2048 --engine event --kills 5 --kill-seed 7 \
    > "$smoke/scale-a.out" 2>/dev/null
"$fig4" --ranks 2048 --engine event --kills 5 --kill-seed 7 \
    > "$smoke/scale-b.out" 2>/dev/null
"$fig4" --ranks 2048 --engine event --kills 5 --kill-seed 7 --workers 4 \
    > "$smoke/scale-c.out" 2>/dev/null
scale_elapsed=$(( $(date +%s) - scale_start ))
cmp -s "$smoke/scale-a.out" "$smoke/scale-b.out" \
    && cmp -s "$smoke/scale-a.out" "$smoke/scale-c.out" || {
    echo "check.sh: 2048-rank event-engine output differs across runs/workers" >&2
    exit 1
}
grep -q "^sched_events," "$smoke/scale-a.out" || {
    echo "check.sh: event-engine smoke reported no scheduler stats" >&2
    exit 1
}
if [ "$scale_elapsed" -gt 30 ]; then
    echo "check.sh: event-engine scale smoke took ${scale_elapsed}s (budget 30s)" >&2
    exit 1
fi
echo "check.sh: event-engine smoke: 2048 ranks, seeded kills, deterministic in ${scale_elapsed}s"

# Crash-recovery smoke: run the journaling CleverLeaf demo, SIGKILL it
# mid-run, and verify (a) the torn journal is a byte prefix of a clean
# run's (pacing never changes the data), (b) cali-recover salvages it,
# and (c) aggregating the salvage is identical for every --threads N.
demo=./target/release/journal_demo
query=./target/release/cali-query
recover=./target/release/cali-recover
"$demo" --journal "$smoke/clean-journal.cali" --timesteps 6 2>/dev/null
"$demo" --journal "$smoke/torn-journal.cali" --timesteps 6 --pace 0.5 2>/dev/null &
demo_pid=$!
sleep 2
kill -9 "$demo_pid" 2>/dev/null || {
    echo "check.sh: paced journal_demo finished before the kill; raise --pace" >&2
    exit 1
}
wait "$demo_pid" 2>/dev/null || true
torn_bytes=$(wc -c < "$smoke/torn-journal.cali")
if [ "$torn_bytes" -eq 0 ]; then
    echo "check.sh: killed run journaled nothing; lower --pace" >&2
    exit 1
fi
head -c "$torn_bytes" "$smoke/clean-journal.cali" | cmp -s - "$smoke/torn-journal.cali" || {
    echo "check.sh: torn journal is not a byte prefix of the clean run's" >&2
    exit 1
}
rc=0
"$recover" -o "$smoke/recovered.cali" "$smoke/torn-journal.cali" 2>"$smoke/recover.err" || rc=$?
if [ "$rc" -ne 0 ] && [ "$rc" -ne 2 ]; then
    cat "$smoke/recover.err" >&2
    echo "check.sh: cali-recover exited $rc" >&2
    exit 1
fi
grep -q "salvaged" "$smoke/recover.err"
for n in 1 2 4; do
    "$query" --threads "$n" \
        -q "AGGREGATE count, sum(time.duration) GROUP BY kernel ORDER BY kernel" \
        "$smoke/recovered.cali" > "$smoke/agg-$n.out" 2>/dev/null
done
cmp -s "$smoke/agg-1.out" "$smoke/agg-2.out" && cmp -s "$smoke/agg-1.out" "$smoke/agg-4.out" || {
    echo "check.sh: recovered aggregation differs across --threads" >&2
    exit 1
}
echo "check.sh: crash-recovery smoke: salvaged $(grep -c . "$smoke/agg-1.out") aggregation rows from a SIGKILLed run"

# Self-instrumentation smoke (the golden-file + property conformance
# suites themselves ride on `cargo test` above): the --stats block must
# be sorted, non-trivial, and byte-identical for every --threads N, and
# --stats=json must stay parseable with the core schema keys present.
for n in 1 2 4; do
    "$query" --threads "$n" --stats \
        -q "AGGREGATE count, sum(time.duration) GROUP BY kernel ORDER BY kernel" \
        "$smoke/recovered.cali" >/dev/null 2>"$smoke/stats-$n.out"
done
LC_ALL=C sort -c "$smoke/stats-1.out" || {
    echo "check.sh: --stats block is not sorted by metric name" >&2
    exit 1
}
grep -q "^format.reader.records=[1-9]" "$smoke/stats-1.out" || {
    echo "check.sh: --stats block is missing reader record counts" >&2
    exit 1
}
cmp -s "$smoke/stats-1.out" "$smoke/stats-2.out" && cmp -s "$smoke/stats-1.out" "$smoke/stats-4.out" || {
    echo "check.sh: --stats block differs across --threads" >&2
    exit 1
}
"$query" --threads 2 --stats=json \
    -q "AGGREGATE count GROUP BY kernel" "$smoke/recovered.cali" \
    >/dev/null 2>"$smoke/stats.json"
grep -q '"query.aggregator.records"' "$smoke/stats.json" || {
    echo "check.sh: --stats=json is missing aggregator metrics" >&2
    exit 1
}
echo "check.sh: self-instrumentation smoke: --stats stable across thread counts"

# Columnar-encoding smoke: cali-pack must rewrite the golden corpus as
# CALB v2 (and back to v1), and a selective query must produce
# byte-identical output on the text, v1, and v2 encodings — with the v2
# run actually skipping blocks — for every --threads N.
pack=./target/release/cali-pack
"$pack" -o "$smoke/golden.calb2" --block-records 4 \
    "$golden"/data/rank0.cali "$golden"/data/rank1.cali 2>/dev/null
"$pack" -o "$smoke/golden.calb" --v1 \
    "$golden"/data/rank0.cali "$golden"/data/rank1.cali 2>/dev/null
pq="AGGREGATE count, sum(time.duration) WHERE loop.iteration > 2 GROUP BY function ORDER BY function"
"$query" -q "$pq" "$golden"/data/rank0.cali "$golden"/data/rank1.cali > "$smoke/pq-text.out" 2>/dev/null
for n in 1 2 4; do
    "$query" --threads "$n" -q "$pq" "$smoke/golden.calb" > "$smoke/pq-v1-$n.out" 2>/dev/null
    "$query" --threads "$n" --stats -q "$pq" "$smoke/golden.calb2" \
        > "$smoke/pq-v2-$n.out" 2>"$smoke/pq-v2-$n.stats"
    cmp -s "$smoke/pq-text.out" "$smoke/pq-v1-$n.out" || {
        echo "check.sh: v1 query output differs from text encoding (--threads $n)" >&2
        exit 1
    }
    cmp -s "$smoke/pq-text.out" "$smoke/pq-v2-$n.out" || {
        echo "check.sh: v2 query output differs from text encoding (--threads $n)" >&2
        exit 1
    }
done
grep -q "^format.reader.blocks_skipped=[1-9]" "$smoke/pq-v2-1.stats" || {
    echo "check.sh: v2 selective query skipped no blocks" >&2
    exit 1
}
cmp -s "$smoke/pq-v2-1.stats" "$smoke/pq-v2-2.stats" && cmp -s "$smoke/pq-v2-1.stats" "$smoke/pq-v2-4.stats" || {
    echo "check.sh: v2 --stats block differs across --threads" >&2
    exit 1
}
echo "check.sh: columnar smoke: v1/v2 outputs identical, $(sed -n 's/^format.reader.blocks_skipped=//p' "$smoke/pq-v2-1.stats") blocks skipped"

# Chaos smoke: a typo'd fault spec must be a hard error, transient
# injected faults must be absorbed by retry, a degraded run must be
# byte-identical across --threads and equal a clean run over the
# surviving files, and a seed-mutated corpus must never panic a reader
# (full matrix in crates/cli/tests/chaos.rs; model in docs/CHAOS.md).
for i in 0 1 2; do
    { printf '__rec=attr,id=0,name=kernel,type=string,prop=default\n'
      printf '__rec=ctx,attr=0,data=k%s\n__rec=ctx,attr=0,data=k%s\n' "$i" "$i"
    } > "$smoke/chaos-in$i.cali"
done
cq="AGGREGATE count GROUP BY kernel ORDER BY kernel"
if "$query" --faults "io.read=fail(" -q "$cq" "$smoke/chaos-in0.cali" >/dev/null 2>&1; then
    echo "check.sh: malformed --faults spec was not a hard error" >&2
    exit 1
fi
"$query" -q "$cq" "$smoke"/chaos-in*.cali > "$smoke/chaos-clean.out" 2>/dev/null
"$query" --faults "io.read=fail(2)" -q "$cq" "$smoke"/chaos-in*.cali \
    > "$smoke/chaos-retry.out" 2>/dev/null
cmp -s "$smoke/chaos-clean.out" "$smoke/chaos-retry.out" || {
    echo "check.sh: run with retried transient faults differs from the clean run" >&2
    exit 1
}
"$query" -q "$cq" "$smoke/chaos-in0.cali" "$smoke/chaos-in2.cali" \
    > "$smoke/chaos-survivors.out" 2>/dev/null
for n in 1 2 4; do
    rc=0
    "$query" --threads "$n" --degrade --faults "io.read~chaos-in1=fail(9)" \
        -q "$cq" "$smoke"/chaos-in*.cali \
        > "$smoke/chaos-deg-$n.out" 2> "$smoke/chaos-deg-$n.err" || rc=$?
    if [ "$rc" -ne 2 ]; then
        echo "check.sh: degraded chaos run exited $rc, expected 2 (--threads $n)" >&2
        exit 1
    fi
done
cmp -s "$smoke/chaos-deg-1.out" "$smoke/chaos-deg-2.out" \
    && cmp -s "$smoke/chaos-deg-1.out" "$smoke/chaos-deg-4.out" \
    && cmp -s "$smoke/chaos-deg-1.err" "$smoke/chaos-deg-2.err" \
    && cmp -s "$smoke/chaos-deg-1.err" "$smoke/chaos-deg-4.err" || {
    echo "check.sh: degraded chaos output differs across --threads" >&2
    exit 1
}
cmp -s "$smoke/chaos-deg-1.out" "$smoke/chaos-survivors.out" || {
    echo "check.sh: degraded result differs from a clean run over the survivors" >&2
    exit 1
}
"$pack" -o "$smoke/chaos.calb2" --block-records 2 "$smoke"/chaos-in*.cali 2>/dev/null
for seed in 1 2 3; do
    for victim in chaos-in1.cali chaos.calb2; do
        cp "$smoke/$victim" "$smoke/fuzz-$victim"
        "$pack" --mutate bitflip --seed "$seed" "$smoke/fuzz-$victim" 2>/dev/null
        for flags in "strict" "--lenient --degrade"; do
            if [ "$flags" = "strict" ]; then flags=""; fi
            rc=0
            "$query" $flags -q "$cq" "$smoke/fuzz-$victim" \
                >/dev/null 2>"$smoke/fuzz.err" || rc=$?
            if [ "$rc" -gt 2 ] || grep -q "panicked" "$smoke/fuzz.err"; then
                echo "check.sh: fuzzed read of $victim (seed $seed) panicked or crashed" >&2
                exit 1
            fi
        done
    done
done
echo "check.sh: chaos smoke: deterministic degraded reads, fuzzed corpus never panics"

# Resident-daemon smoke (docs/SERVED.md): start cali-served, ingest the
# golden corpus over TCP, query it over HTTP, drain it gracefully
# (exit 0), restart over the same journals, and verify the recovered
# answer byte-identically. Every client call carries a socket timeout,
# so a wedged daemon fails the gate instead of hanging it.
served=./target/release/cali-served
sq="SELECT function, count, sum#time.duration, stream ORDER BY stream, function FORMAT csv"
start_served() {
    rm -f "$smoke/served-ports"
    "$served" --data-dir "$smoke/served-data" --ports-file "$smoke/served-ports" \
        --aggregate "count,sum(time.duration)" --group-by function --fsync \
        > "$smoke/served.log" 2>&1 &
    served_pid=$!
    tries=0
    while [ ! -s "$smoke/served-ports" ]; do
        tries=$((tries + 1))
        if [ "$tries" -gt 100 ]; then
            echo "check.sh: cali-served never wrote its ports file" >&2
            cat "$smoke/served.log" >&2
            exit 1
        fi
        sleep 0.1
    done
    served_http="127.0.0.1:$(sed -n 's/^http=//p' "$smoke/served-ports")"
    served_ingest="127.0.0.1:$(sed -n 's/^ingest=//p' "$smoke/served-ports")"
}
start_served
"$served" --http "$served_http" --timeout-ms 10000 --probe /readyz > /dev/null
"$served" --connect "$served_ingest" --timeout-ms 10000 --stream rank0 \
    "$golden/data/rank0.cali" > /dev/null
"$served" --connect "$served_ingest" --timeout-ms 10000 --stream rank1 \
    "$golden/data/rank1.cali" > /dev/null
"$served" --http "$served_http" --timeout-ms 10000 --client-query "$sq" \
    > "$smoke/served-before.csv"
"$served" --http "$served_http" --timeout-ms 10000 --shutdown > /dev/null
rc=0
wait "$served_pid" || rc=$?
if [ "$rc" -ne 0 ]; then
    echo "check.sh: cali-served graceful drain exited $rc, expected 0" >&2
    cat "$smoke/served.log" >&2
    exit 1
fi
start_served
"$served" --http "$served_http" --timeout-ms 10000 --client-query "$sq" \
    > "$smoke/served-after.csv"
"$served" --http "$served_http" --timeout-ms 10000 --shutdown > /dev/null
wait "$served_pid" || {
    echo "check.sh: restarted cali-served drain failed" >&2
    exit 1
}
cmp -s "$smoke/served-before.csv" "$smoke/served-after.csv" || {
    echo "check.sh: cali-served recovered answer differs from pre-restart answer" >&2
    exit 1
}
grep -q "," "$smoke/served-before.csv" || {
    echo "check.sh: cali-served query returned no data" >&2
    exit 1
}
echo "check.sh: served smoke: ingest->query->drain->restart recovered byte-identically"

# Race-analysis gate: the 2048-rank seeded-kill two-level reduction
# must certify race- and deadlock-free, with a certificate that is
# byte-identical across repeat runs and event-engine worker pools; and
# the deliberately faulty demo programs must keep the analyzer's pinned
# exit-code contract (0 clean / 1 warnings denied / 2 errors; model in
# docs/ANALYSIS.md).
race=./target/release/cali-race
"$race" --ranks 2048 --kills 5 --nodes 32 --workers 1 > "$smoke/race-w1.cert"
"$race" --ranks 2048 --kills 5 --nodes 32 --workers 1 > "$smoke/race-w1-again.cert"
"$race" --ranks 2048 --kills 5 --nodes 32 --workers 4 > "$smoke/race-w4.cert"
grep -q "verdict: CLEAN (race-free, deadlock-free)" "$smoke/race-w1.cert" || {
    echo "check.sh: 2048-rank seeded-kill reduction did not certify clean" >&2
    cat "$smoke/race-w1.cert" >&2
    exit 1
}
cmp -s "$smoke/race-w1.cert" "$smoke/race-w1-again.cert" || {
    echo "check.sh: cali-race certificate differs between repeat runs" >&2
    exit 1
}
cmp -s "$smoke/race-w1.cert" "$smoke/race-w4.cert" || {
    echo "check.sh: cali-race certificate differs across --workers 1/4" >&2
    exit 1
}
for demo_want in wildcard-race:2 deadlock:2 straggler:0; do
    demo=${demo_want%:*}
    want=${demo_want#*:}
    rc=0
    "$race" --program "$demo" --ranks 8 > /dev/null 2>&1 || rc=$?
    if [ "$rc" -ne "$want" ]; then
        echo "check.sh: cali-race --program $demo exited $rc, expected $want" >&2
        exit 1
    fi
done
rc=0
"$race" --program straggler --ranks 8 --deny-warnings > /dev/null 2>&1 || rc=$?
if [ "$rc" -ne 1 ]; then
    echo "check.sh: cali-race --deny-warnings exited $rc, expected 1" >&2
    exit 1
fi
echo "check.sh: race analysis: 2048-rank certificate clean and deterministic, demo exit codes pinned"
echo "check.sh: all gates passed"
