#!/bin/sh
# Full local gate: release build, test suite, lint pass, a rustdoc pass
# with warnings (missing_docs among them) promoted to errors, and a
# failure-injection smoke run of the fault-tolerant pipeline.
set -eu
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q
cargo clippy --workspace --all-targets -q -- -D warnings
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace

# Failure-injection smoke: a corrupt corpus must be salvageable with
# --lenient (and fatal without), and a killed rank must leave fig4's
# resilient reduction with an honest coverage report (asserted inside
# the harness).
smoke=$(mktemp -d)
trap 'rm -rf "$smoke"' EXIT
printf '__rec=attr,id=0,name=kernel,type=string,prop=default\n__rec=ctx,attr=0,data=ok\n' \
    > "$smoke/good.cali"
printf '__rec=attr,id=0,name=kernel,type=string,prop=default\n__rec=ctx,attr=99,data=broken\n__rec=ctx,attr=0,data=ok\n' \
    > "$smoke/bad.cali"
if cargo run -q --release -p cali-cli --bin cali-query -- \
    -q "AGGREGATE count GROUP BY kernel" "$smoke/good.cali" "$smoke/bad.cali" \
    >/dev/null 2>&1; then
    echo "check.sh: strict read of a corrupt corpus unexpectedly succeeded" >&2
    exit 1
fi
cargo run -q --release -p cali-cli --bin cali-query -- \
    --lenient --max-groups 8 -q "AGGREGATE count GROUP BY kernel" \
    "$smoke/good.cali" "$smoke/bad.cali" > "$smoke/lenient.out"
grep -q "ok" "$smoke/lenient.out"
cargo run -q --release -p caliper-bench --bin fig4 -- --quick --max-np 8 --kill 3 \
    > /dev/null
echo "check.sh: all gates passed"
