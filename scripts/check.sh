#!/bin/sh
# Full local gate: release build, test suite, and a rustdoc pass with
# warnings (missing_docs among them) promoted to errors.
set -eu
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace
