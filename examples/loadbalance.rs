//! Load-balance study (§VI-D): include `mpi.rank` in the aggregation
//! key to compare values across processes.
//!
//! Shows the paper's scheme
//!
//! ```text
//! AGGREGATE time.duration
//! GROUP BY kernel, mpi.function, mpi.rank
//! ```
//!
//! and prints per-rank computation vs. MPI time plus a simple imbalance
//! metric (max/avg) per category.
//!
//! Run with: `cargo run --release --example loadbalance`

use caliper_repro::prelude::*;

fn main() {
    let params = CleverLeafParams {
        timesteps: 25,
        ranks: 8,
        ..CleverLeafParams::case_study()
    };
    let config = Config::event_aggregate("kernel,mpi.function,mpi.rank", "sum(time.duration)");
    eprintln!(
        "running CleverLeaf proxy: {} ranks, {} timesteps ...",
        params.ranks, params.timesteps
    );
    let app = CleverLeaf::new(params.clone());
    let per_rank = app.run_all(&config);

    let mut merged = Dataset::new();
    for ds in &per_rank {
        let bytes = cali::to_bytes(ds);
        let mut reader = caliper_repro::format::CaliReader::into_dataset(merged);
        reader
            .read_stream(std::io::BufReader::new(&bytes[..]))
            .expect("merge");
        merged = reader.finish();
    }

    // Per-rank computation and communication time.
    println!("== per-rank computation vs. MPI time (seconds) ==\n");
    let comp = run_query(
        &merged,
        "LET s = scale(sum#time.duration, 0.000001) \
         AGGREGATE sum(s) AS compute_s WHERE not(mpi.function) GROUP BY mpi.rank",
    )
    .expect("computation query");
    let mpi = run_query(
        &merged,
        "LET s = scale(sum#time.duration, 0.000001) \
         AGGREGATE sum(s) AS mpi_s WHERE mpi.function GROUP BY mpi.rank",
    )
    .expect("mpi query");

    println!("rank   compute_s   mpi_s");
    let mut compute = vec![0.0f64; params.ranks];
    let mut comm = vec![0.0f64; params.ranks];
    for rank in 0..params.ranks {
        let by_rank = |result: &QueryResult, col: &str| -> f64 {
            let r = result.store.find("mpi.rank").unwrap();
            let v = result.store.find(col).unwrap();
            result
                .records
                .iter()
                .find(|rec| rec.get(r.id()).and_then(|v| v.to_i64()) == Some(rank as i64))
                .and_then(|rec| rec.get(v.id())?.to_f64())
                .unwrap_or(0.0)
        };
        compute[rank] = by_rank(&comp, "compute_s");
        comm[rank] = by_rank(&mpi, "mpi_s");
        println!("{rank:>4}   {:>9.3}   {:>5.3}", compute[rank], comm[rank]);
    }

    let imbalance = |v: &[f64]| {
        let max = v.iter().copied().fold(0.0, f64::max);
        let avg = v.iter().sum::<f64>() / v.len() as f64;
        max / avg
    };
    println!();
    println!("computation imbalance (max/avg): {:.3}", imbalance(&compute));
    println!("MPI-time imbalance     (max/avg): {:.3}", imbalance(&comm));
    println!();
    println!("note: ranks with less computation wait longer in MPI_Barrier —");
    println!("computation imbalance reappears as MPI time (Figure 7).");

    // Per-kernel spread across ranks, the paper's drill-down.
    println!("\n== top kernels: time spread across ranks ==\n");
    let result = run_query(
        &merged,
        "LET s = scale(sum#time.duration, 0.000001) \
         AGGREGATE sum(s) AS time_s, min(s), max(s) \
         WHERE kernel GROUP BY kernel, mpi.rank",
    )
    .expect("kernel query");
    let kernel_attr = result.store.find("kernel").unwrap();
    let time_attr = result.store.find("time_s").unwrap();
    let mut per_kernel: std::collections::BTreeMap<String, Vec<f64>> = Default::default();
    for rec in &result.records {
        if let (Some(k), Some(t)) = (rec.get(kernel_attr.id()), rec.get(time_attr.id())) {
            per_kernel
                .entry(k.to_string())
                .or_default()
                .push(t.to_f64().unwrap_or(0.0));
        }
    }
    let mut rows: Vec<(String, f64, f64, f64)> = per_kernel
        .into_iter()
        .map(|(k, v)| {
            let min = v.iter().copied().fold(f64::INFINITY, f64::min);
            let max = v.iter().copied().fold(0.0, f64::max);
            let avg = v.iter().sum::<f64>() / v.len() as f64;
            (k, min, avg, max)
        })
        .collect();
    rows.sort_by(|a, b| b.2.total_cmp(&a.2));
    println!("kernel        min_s    avg_s    max_s");
    for (kernel, min, avg, max) in rows.iter().take(5) {
        println!("{kernel:<12} {min:>6.3}  {avg:>7.3}  {max:>7.3}");
    }
}
