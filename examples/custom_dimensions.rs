//! Application-specific data dimensions — the paper's distinctive
//! capability (§VI-E, Conclusions): "application-specific attributes,
//! such as the AMR level in our example, let us study performance
//! aspects that could previously not be obtained."
//!
//! This example instruments a synthetic adaptive linear solver with two
//! *domain* attributes no traditional profiler knows about:
//!
//! * `solver.preconditioner` — which preconditioner was active,
//! * `matrix.size` — the (varying) system size per solve.
//!
//! It then answers domain questions directly in the query language,
//! including binning the matrix size with `LET truncate(...)` and a
//! histogram over iteration counts.
//!
//! Run with: `cargo run --example custom_dimensions`

use caliper_repro::prelude::*;

/// A fake adaptive solver: iterations depend on preconditioner quality
/// and matrix size; time depends on size * iterations.
fn solve(scope: &mut ThreadScope, attrs: &Attrs, precond: &str, n: u64, quality: f64) {
    scope.begin(&attrs.precond, precond);
    scope.begin(&attrs.size, n);
    let iterations = ((n as f64).sqrt() / quality).ceil() as u64;
    scope.begin(&attrs.iters, iterations);
    scope.advance_time(iterations * n * 3); // 3 ns per row per iteration
    scope.end(&attrs.iters).unwrap();
    scope.end(&attrs.size).unwrap();
    scope.end(&attrs.precond).unwrap();
}

struct Attrs {
    precond: Attribute,
    size: Attribute,
    iters: Attribute,
}

fn main() {
    // On-line scheme keyed on the *application's own* dimensions.
    let config = Config::event_aggregate(
        "solver.preconditioner,matrix.size",
        "count,sum(time.duration),sum(solver.iterations),max(solver.iterations)",
    );
    let caliper = Caliper::with_clock(config, Clock::virtual_clock());
    let attrs = Attrs {
        precond: caliper.attribute("solver.preconditioner", ValueType::Str, Properties::NESTED),
        size: caliper.attribute("matrix.size", ValueType::UInt, Properties::AS_VALUE),
        iters: caliper.attribute(
            "solver.iterations",
            ValueType::UInt,
            Properties::AS_VALUE | Properties::AGGREGATABLE,
        ),
    };

    let mut scope = caliper.make_thread_scope();
    for step in 0u64..200 {
        // Sizes sweep as the (fake) mesh adapts.
        let n = 1_000 + (step % 10) * 700;
        solve(&mut scope, &attrs, "jacobi", n, 1.0);
        if step % 2 == 0 {
            solve(&mut scope, &attrs, "ilu", n, 2.5);
        }
        if step % 5 == 0 {
            solve(&mut scope, &attrs, "amg", n, 6.0);
        }
    }
    scope.flush();
    let profile = caliper.take_dataset();

    println!("== time and iterations by preconditioner ==\n");
    let result = run_query(
        &profile,
        "LET ms = scale(sum#time.duration, 0.001) \
         AGGREGATE sum(ms) AS time_ms, sum(sum#solver.iterations) AS iters, \
                   sum(aggregate.count) AS solves \
         WHERE solver.preconditioner \
         GROUP BY solver.preconditioner ORDER BY time_ms desc",
    )
    .expect("query");
    println!("{}", result.render());

    println!("== time by preconditioner and matrix-size bin (LET truncate) ==\n");
    let result = run_query(
        &profile,
        "LET bin = truncate(matrix.size, 2000), ms = scale(sum#time.duration, 0.001) \
         AGGREGATE sum(ms) AS time_ms \
         WHERE solver.preconditioner=jacobi \
         GROUP BY solver.preconditioner, bin ORDER BY bin",
    )
    .expect("query");
    println!("{}", result.render());

    println!("== histogram of per-solve max iteration counts ==\n");
    let result = run_query(
        &profile,
        "AGGREGATE histogram(max#solver.iterations, 0, 100, 10) \
         GROUP BY solver.preconditioner FORMAT table",
    )
    .expect("query");
    println!("{}", result.render());
    println!("(histogram cells: underflow|10 bins over [0,100)|overflow)");
}
