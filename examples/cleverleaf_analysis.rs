//! The CleverLeaf case study (§VI), end to end: run the instrumented
//! AMR proxy with a comprehensive on-line aggregation scheme, then
//! interactively answer all four of the paper's analysis questions from
//! the same profile, only by changing the off-line query:
//!
//! 1. where does kernel time go (Figure 5),
//! 2. what does communication cost (Figure 6),
//! 3. how much time per AMR level over time (Figure 8),
//! 4. how do refinement levels spread across ranks (Figure 9).
//!
//! "All experiments ran with the same program executable using the same
//! instrumentation annotations, we only changed the aggregation
//! schemes." (§VI-F)
//!
//! Run with: `cargo run --release --example cleverleaf_analysis`

use caliper_repro::prelude::*;

fn show(merged: &Dataset, title: &str, query: &str) {
    println!("== {title} ==");
    println!("   {}\n", query.replace('\n', "\n   "));
    let result = run_query(merged, query).expect("query");
    println!("{}", result.render());
}

fn main() {
    // A small version of the triple-point run (full size with --full).
    let full = std::env::args().any(|a| a == "--full");
    let params = CleverLeafParams {
        timesteps: if full { 100 } else { 25 },
        ranks: if full { 18 } else { 6 },
        ..CleverLeafParams::case_study()
    };
    eprintln!(
        "running CleverLeaf proxy: {} ranks, {} timesteps ...",
        params.ranks, params.timesteps
    );

    // §VI-E: on-line aggregation over ALL annotation attributes,
    // including the application-specific AMR level.
    let scheme_key =
        "function,annotation,kernel,amr.level,iteration#mainloop,mpi.function,mpi.rank";
    let config = Config::event_aggregate(scheme_key, "count,sum(time.duration)");
    let app = CleverLeaf::new(params);
    let per_rank = app.run_all(&config);
    eprintln!(
        "per-process profile records: {} (paper: 257592)\n",
        per_rank[0].len()
    );

    // Cross-process merge (what feeding all .cali files to cali-query does).
    let mut merged = Dataset::new();
    for ds in &per_rank {
        let bytes = cali::to_bytes(ds);
        let mut reader = caliper_repro::format::CaliReader::into_dataset(merged);
        reader
            .read_stream(std::io::BufReader::new(&bytes[..]))
            .expect("merge rank dataset");
        merged = reader.finish();
    }

    show(
        &merged,
        "computational kernels (Figure 5)",
        "AGGREGATE sum(sum#time.duration) AS time, sum(aggregate.count) AS visits \
         WHERE kernel GROUP BY kernel ORDER BY time desc",
    );
    show(
        &merged,
        "MPI functions (Figure 6)",
        "AGGREGATE sum(sum#time.duration) AS time, sum(aggregate.count) AS calls \
         WHERE mpi.function GROUP BY mpi.function ORDER BY time desc",
    );
    show(
        &merged,
        "time per AMR level, first 5 timesteps (Figure 8)",
        "AGGREGATE sum(sum#time.duration) AS time \
         WHERE not(mpi.function), amr.level, iteration#mainloop < 5 \
         GROUP BY amr.level, iteration#mainloop \
         ORDER BY iteration#mainloop, amr.level",
    );
    show(
        &merged,
        "time per AMR level per rank (Figure 9)",
        "AGGREGATE sum(sum#time.duration) AS time \
         WHERE not(mpi.function), amr.level \
         GROUP BY amr.level, mpi.rank ORDER BY mpi.rank, amr.level",
    );
}
