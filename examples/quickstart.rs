//! Quickstart: the paper's Listing 1 and §III-B walk-through.
//!
//! Annotates a small program with `mark_begin`/`mark_end`-style calls,
//! runs on-line event aggregation with the scheme
//!
//! ```text
//! AGGREGATE count, sum(time)
//! GROUP BY function, loop.iteration
//! ```
//!
//! and prints the resulting time-series function profile table, then
//! shows how removing `loop.iteration` from the key collapses it.
//!
//! Run with: `cargo run --example quickstart`

use caliper_repro::prelude::*;

fn foo(scope: &mut ThreadScope, function: &Annotation, us: u64) {
    function.begin(scope, "foo");
    scope.advance_time(us * 1_000); // simulated work
    function.end(scope);
}

fn bar(scope: &mut ThreadScope, function: &Annotation, us: u64) {
    function.begin(scope, "bar");
    scope.advance_time(us * 1_000);
    function.end(scope);
}

fn main() {
    // On-line event aggregation configured with the paper's scheme.
    let config = Config::event_aggregate("function,loop.iteration", "count,sum(time.duration)");
    let caliper = Caliper::with_clock(config, Clock::virtual_clock());

    let function = Annotation::new(&caliper, "function");
    let iteration = Annotation::value_attribute(&caliper, "loop.iteration");

    // The annotated program of Listing 1: foo(1); foo(2); bar(1) per
    // loop iteration.
    let mut scope = caliper.make_thread_scope();
    for i in 0..4i64 {
        iteration.begin(&mut scope, i);
        foo(&mut scope, &function, 10);
        foo(&mut scope, &function, 30);
        bar(&mut scope, &function, 10);
        iteration.end(&mut scope);
    }
    scope.flush();
    let profile = caliper.take_dataset();

    // The §III-B result table: one row per unique aggregation key.
    println!("== AGGREGATE count, sum(time) GROUP BY function, loop.iteration ==\n");
    let result = run_query(
        &profile,
        "SELECT function, loop.iteration, aggregate.count, sum#time.duration \
         ORDER BY loop.iteration, function desc",
    )
    .expect("query");
    println!("{}", result.render());

    // Removing the iteration from the key gives the compact profile —
    // "custom aggregation schemes allow us to easily create different
    // tradeoffs between data volume and detail."
    println!("== AGGREGATE count, sum(time) GROUP BY function ==\n");
    let collapsed = run_query(
        &profile,
        "AGGREGATE sum(aggregate.count) AS count, sum(sum#time.duration) AS time \
         GROUP BY function ORDER BY time desc",
    )
    .expect("query");
    println!("{}", collapsed.render());
}
