//! Scalable cross-process aggregation (§IV-C / §V-C), driven through
//! the library API: generate a distributed ParaDiS-style dataset (one
//! `.cali` file per MPI process), run the evaluation query with the
//! parallel query engine, and print the result with the per-phase
//! timing breakdown Figure 4 plots — then drill down interactively with
//! `requery`.
//!
//! Run with: `cargo run --release --example parallel_query [-- --ranks N]`

use std::path::PathBuf;

use cali_cli::parallel_query;
use caliper_repro::apps::paradis::{self, ParaDisParams, EVALUATION_QUERY};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let ranks: usize = args
        .iter()
        .position(|a| a == "--ranks")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(16);

    // One profile file per (simulated) application process.
    let dir = std::env::temp_dir().join(format!("caliper-example-{}", std::process::id()));
    eprintln!("generating {ranks} per-process ParaDiS profiles under {dir:?} ...");
    let params = ParaDisParams::default();
    let paths = paradis::write_files(&params, ranks, &dir).expect("write profiles");
    eprintln!(
        "each file carries {} pre-aggregated snapshot records\n",
        paradis::generate_rank(&params, 0).len()
    );

    // The paper's evaluation query: total CPU time over computational
    // kernels and MPI functions, across all ranks.
    let per_rank: Vec<Vec<PathBuf>> = paths.iter().map(|p| vec![p.clone()]).collect();
    let (result, timings) = parallel_query(EVALUATION_QUERY, per_rank).expect("parallel query");

    println!("== {} output records (paper: 85); top 10 by total time ==\n", result.records.len());
    let top = result
        .requery(
            "AGGREGATE sum(sum#sum#time.duration) AS total_us, sum(sum#aggregate.count) AS visits \
             GROUP BY region ORDER BY total_us desc",
        )
        .expect("requery");
    for line in top.render().lines().take(11) {
        println!("{line}");
    }

    println!("\n== timing breakdown (Figure 4's three curves) ==\n");
    println!(
        "local read+process (max over {} ranks): {:.4} s",
        timings.local_s.len(),
        timings.local_max_s()
    );
    println!(
        "tree reduction (critical path, {} levels): {:.6} s",
        timings.level_merge_max_s.len(),
        timings.reduction_s
    );
    for (level, t) in timings.level_merge_max_s.iter().enumerate() {
        println!("  level {level}: {t:.6} s");
    }
    println!("total: {:.4} s", timings.total_s());

    std::fs::remove_dir_all(&dir).ok();
}
