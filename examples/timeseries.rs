//! Time-series analysis over a trace: the `time.offset` timestamps plus
//! `LET truncate(...)` binning turn a raw event trace into a
//! phase-over-time profile — the "entire space between full traces and
//! a scalar value" the paper's introduction promises, navigated after
//! the fact with queries alone.
//!
//! Run with: `cargo run --example timeseries`

use caliper_repro::prelude::*;

fn main() {
    // Trace with per-snapshot timestamps (timer.offset).
    let config = Config::event_trace().set("timer.offset", "true");
    let caliper = Caliper::with_clock(config, Clock::virtual_clock());
    let phase = caliper.region_attribute("phase");

    // A program whose phase mix shifts over time: compute shrinks,
    // communication grows.
    let mut scope = caliper.make_thread_scope();
    for step in 0..200u64 {
        scope.begin(&phase, "compute");
        scope.advance_time(1_000_000_u64.saturating_sub(step * 4_000));
        scope.end(&phase).unwrap();
        scope.begin(&phase, "communicate");
        scope.advance_time(100_000 + step * 4_000);
        scope.end(&phase).unwrap();
    }
    scope.flush();
    let trace = caliper.take_dataset();
    println!("trace: {} records\n", trace.len());

    // Bin the trace into 20 ms windows and compare phase shares.
    println!("== phase time per 20 ms window (first 8 windows) ==\n");
    let result = run_query(
        &trace,
        "LET window.ms = scale(time.offset, 0.001), window = truncate(window.ms, 20) \
         AGGREGATE sum(time.duration) AS us WHERE phase \
         GROUP BY window, phase \
         ORDER BY window, phase \
         LIMIT 16",
    )
    .expect("window query");
    println!("{}", result.render());

    // The crossover: when does communication overtake compute?
    let per_window = run_query(
        &trace,
        "LET window.ms = scale(time.offset, 0.001), window = truncate(window.ms, 20) \
         AGGREGATE sum(time.duration) AS us WHERE phase \
         GROUP BY window, phase ORDER BY window",
    )
    .expect("crossover query");
    let window = per_window.store.find("window").unwrap();
    let phase_attr = per_window.store.find("phase").unwrap();
    let us = per_window.store.find("us").unwrap();
    let mut crossover = None;
    let mut windows: std::collections::BTreeMap<i64, (f64, f64)> = Default::default();
    for rec in &per_window.records {
        let (Some(w), Some(p), Some(v)) = (
            rec.get(window.id()).and_then(|v| v.to_f64()),
            rec.get(phase_attr.id()),
            rec.get(us.id()).and_then(|v| v.to_f64()),
        ) else {
            continue;
        };
        let entry = windows.entry(w as i64).or_default();
        if p == &Value::str("compute") {
            entry.0 = v;
        } else {
            entry.1 = v;
        }
    }
    for (w, (compute, comm)) in &windows {
        if comm > compute && crossover.is_none() {
            crossover = Some(*w);
        }
    }
    match crossover {
        Some(w) => println!("communication overtakes compute in the {w} ms window"),
        None => println!("no crossover within the traced interval"),
    }
}
