//! Multiple simultaneous aggregation schemes over one run.
//!
//! §VI-F of the paper: "All experiments ran with the same program
//! executable using the same instrumentation annotations, we only
//! changed the aggregation schemes." Channels take this one step
//! further: several schemes observe a *single* execution — here a
//! low-overhead sampled kernel profile, a detailed per-iteration
//! profile, and a full trace, collected side by side.
//!
//! Run with: `cargo run --release --example multichannel`

use caliper_repro::prelude::*;

fn main() {
    // Channel 1 (default): sampled kernel profile, 10 ms period.
    let caliper = Caliper::with_clock(
        Config::sampled_aggregate(10_000_000, "kernel", "count"),
        Clock::virtual_clock(),
    );
    // Channel 2: detailed event-triggered per-iteration profile.
    let detailed = caliper.create_channel(
        "detailed",
        Config::event_aggregate(
            "kernel,iteration#mainloop",
            "count,sum(time.duration),max(time.duration)",
        ),
    );
    // Channel 3: full event trace.
    let trace_channel = caliper.create_channel("trace", Config::event_trace());

    // One instrumented run.
    let app = CleverLeaf::new(CleverLeafParams {
        timesteps: 20,
        ranks: 1,
        ..CleverLeafParams::case_study()
    });
    app.run_rank(0, &caliper, WorkMode::Virtual);

    let sampled = caliper.take_dataset();
    let per_iter = detailed.take_dataset();
    let trace = trace_channel.take_dataset();

    println!("one run, three simultaneous profiles:");
    println!("  sampled profile : {:>6} records", sampled.len());
    println!("  detailed profile: {:>6} records", per_iter.len());
    println!("  full trace      : {:>6} records\n", trace.len());

    println!("== sampled kernel profile (channel 1) ==\n");
    let result = run_query(
        &sampled,
        "AGGREGATE sum(aggregate.count) AS samples WHERE kernel \
         GROUP BY kernel ORDER BY samples desc LIMIT 5",
    )
    .expect("sampled query");
    println!("{}", result.render());

    println!("== calc-dt time per iteration, first 5 (channel 2) ==\n");
    let result = run_query(
        &per_iter,
        "AGGREGATE sum(sum#time.duration) AS time_us \
         WHERE kernel=calc-dt, iteration#mainloop < 5 \
         GROUP BY iteration#mainloop ORDER BY iteration#mainloop",
    )
    .expect("detailed query");
    println!("{}", result.render());

    println!("== trace re-aggregated off-line agrees with channel 2 ==\n");
    let from_trace = run_query(
        &trace,
        "AGGREGATE sum(time.duration) AS time_us \
         WHERE kernel=calc-dt, iteration#mainloop < 5 \
         GROUP BY iteration#mainloop ORDER BY iteration#mainloop",
    )
    .expect("trace query");
    println!("{}", from_trace.render());
    assert_eq!(
        result.to_table().render(),
        from_trace.to_table().render(),
        "on-line and off-line aggregation must agree"
    );
    println!("(identical — §VI-F: multiple ways to obtain the same end result)");
}
