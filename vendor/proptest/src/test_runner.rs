//! Test-runner support types: configuration, the deterministic RNG, and
//! the case-failure error type.

/// Per-test configuration. Only the field the workspace uses (`cases`)
/// is modeled.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases to run per test function.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases (the only constructor the
    /// real crate's users commonly need).
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    /// Defaults to 128 cases, overridable with the `PROPTEST_CASES`
    /// environment variable (same knob as the real crate).
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(128);
        ProptestConfig { cases }
    }
}

/// Error carried out of a failing property-test case by the
/// `prop_assert!` family.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Creates a failure with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}

/// A small, fast, deterministic RNG (SplitMix64). Seeded from the test
/// name so every test gets an independent but fully reproducible stream:
/// a failure reproduces identically on every run and machine.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the RNG from a test name.
    pub fn from_name(name: &str) -> Self {
        // FNV-1a over the name, then a fixed tweak so short names do not
        // yield tiny states.
        let mut h: u64 = 0xcbf29ce484222325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        TestRng {
            state: h ^ 0x9e3779b97f4a7c15,
        }
    }

    /// Seeds the RNG from an explicit value.
    pub fn from_seed(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        // SplitMix64 (public domain, Sebastiano Vigna).
        self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`. `bound` must be non-zero.
    pub fn below(&mut self, bound: usize) -> usize {
        debug_assert!(bound > 0);
        (self.next_u64() % bound as u64) as usize
    }

    /// Uniform value in the inclusive range `[lo, hi]`.
    pub fn range_inclusive(&mut self, lo: usize, hi: usize) -> usize {
        debug_assert!(lo <= hi);
        lo + self.below(hi - lo + 1)
    }
}
