//! `any::<T>()` — strategies for primitive types from their full bit
//! patterns.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical "anything goes" strategy.
pub trait Arbitrary: Sized {
    /// Generates one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    /// Arbitrary bit patterns: includes subnormals, infinities and NaN,
    /// like the real crate's `any::<f64>()` with its default float
    /// classes. Callers that cannot tolerate NaN filter it themselves
    /// (as the workspace's tests do).
    fn arbitrary(rng: &mut TestRng) -> f64 {
        f64::from_bits(rng.next_u64())
    }
}

impl Arbitrary for f32 {
    /// Arbitrary bit patterns, as for `f64`.
    fn arbitrary(rng: &mut TestRng) -> f32 {
        f32::from_bits(rng.next_u64() as u32)
    }
}

impl Arbitrary for char {
    /// Arbitrary Unicode scalar values (surrogates re-rolled by masking
    /// into the valid planes).
    fn arbitrary(rng: &mut TestRng) -> char {
        loop {
            let c = (rng.next_u64() % 0x11_0000) as u32;
            if let Some(c) = char::from_u32(c) {
                return c;
            }
        }
    }
}

/// The strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

/// Returns the canonical strategy generating arbitrary values of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}
