//! The [`Strategy`] trait and the combinator strategies the workspace's
//! tests use: `prop_map`, [`Just`], unions (`prop_oneof!`), integer
//! ranges, regex-subset string literals, and tuples.

use crate::test_runner::TestRng;

/// A generator of values of type [`Strategy::Value`].
///
/// Unlike the real proptest (whose strategies produce shrinkable value
/// *trees*), this stand-in generates plain values — shrinking is not
/// implemented, which keeps the trait object-safe and tiny.
pub trait Strategy {
    /// The type of value this strategy generates.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Returns a strategy producing `map(value)` for each generated
    /// `value` — the workhorse combinator for building structured inputs.
    fn prop_map<O, F>(self, map: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map {
            strategy: self,
            map,
        }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    strategy: S,
    map: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.map)(self.strategy.generate(rng))
    }
}

/// Strategy that always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Boxes a strategy into a uniform trait-object arm for [`Union`]
/// (used by the `prop_oneof!` macro expansion).
pub fn boxed<S>(strategy: S) -> Box<dyn Strategy<Value = S::Value>>
where
    S: Strategy + 'static,
{
    Box::new(strategy)
}

impl<V> Strategy for Box<dyn Strategy<Value = V>> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        (**self).generate(rng)
    }
}

/// Strategy that picks one of its arms uniformly per generated value
/// (the expansion of `prop_oneof!`).
pub struct Union<V> {
    arms: Vec<Box<dyn Strategy<Value = V>>>,
}

impl<V> Union<V> {
    /// Creates a union over the given arms. Panics if `arms` is empty.
    pub fn new(arms: Vec<Box<dyn Strategy<Value = V>>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        let arm = rng.below(self.arms.len());
        self.arms[arm].generate(rng)
    }
}

/// Integer `lo..hi` ranges are strategies generating uniformly within
/// the half-open range, matching proptest.
macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let width = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % width;
                (self.start as i128 + offset as i128) as $t
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy");
                let width = (*self.end() as i128 - *self.start() as i128 + 1) as u128;
                let offset = (rng.next_u64() as u128) % width;
                (*self.start() as i128 + offset as i128) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// String literals are regex-subset strategies producing matching
/// strings, as in proptest (`"[a-z]{1,6}"`, `"\\PC*"`, …).
impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        crate::pattern::generate(self, rng)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
}
