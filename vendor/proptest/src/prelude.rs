//! The glob-import surface: `use proptest::prelude::*;` brings in the
//! [`Strategy`] trait, the common constructors, the config type, the
//! `prop` namespace and all the macros — matching the real crate.

pub use crate::arbitrary::{any, Arbitrary};
pub use crate::prop;
pub use crate::strategy::{Just, Strategy};
pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
