//! In-workspace stand-in for the `proptest` property-testing crate.
//!
//! The build environment for this repository is fully offline, so external
//! crates cannot be downloaded from crates.io. This crate re-implements
//! the subset of the proptest API that the workspace's property tests
//! use, with the same names and shapes:
//!
//! * the [`Strategy`](strategy::Strategy) trait with `prop_map`, plus the
//!   built-in strategies the tests reach for: integer/float/bool
//!   [`any`](arbitrary::any), integer `Range`s, regex-subset string
//!   literals, tuples, [`Just`](strategy::Just),
//!   `prop_oneof!` unions and [`collection::vec`];
//! * the [`proptest!`] macro (including `#![proptest_config(..)]`) and
//!   the `prop_assert!` / `prop_assert_eq!` / `prop_assert_ne!` family;
//! * [`ProptestConfig`](test_runner::ProptestConfig) with `with_cases`.
//!
//! What it deliberately does **not** implement: shrinking, failure
//! persistence, and `forall` edge-case biasing. Failures report the
//! generated case verbatim (values are regenerable — the RNG is seeded
//! deterministically from the test name, so a failing case reproduces on
//! every run and on every machine).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arbitrary;
pub mod collection;
pub mod pattern;
pub mod prelude;
pub mod strategy;
pub mod test_runner;

/// Namespace mirror so `prop::collection::vec(..)` works after
/// `use proptest::prelude::*`, as with the real crate.
pub mod prop {
    pub use crate::collection;
}

/// Asserts a condition inside a [`proptest!`] body; on failure the
/// current case returns an error (reported with the test name and case
/// number) instead of panicking outright.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {{
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    }};
}

/// Asserts two expressions are equal inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = &$left;
        let right = &$right;
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{:?}` == `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let left = &$left;
        let right = &$right;
        $crate::prop_assert!(*left == *right, $($fmt)*);
    }};
}

/// Asserts two expressions are unequal inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = &$left;
        let right = &$right;
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{:?}` != `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let left = &$left;
        let right = &$right;
        $crate::prop_assert!(*left != *right, $($fmt)*);
    }};
}

/// Builds a [`Union`](strategy::Union) strategy that picks one of the
/// given strategies uniformly for each generated value. All arms must
/// produce the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::boxed($strategy)),+
        ])
    };
}

/// Declares property tests: each `fn` inside the block runs its body for
/// `ProptestConfig::cases` generated inputs. Accepts an optional leading
/// `#![proptest_config(expr)]` attribute, doc comments/attributes on each
/// function (including `#[test]`), and `pattern in strategy` argument
/// bindings.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { $crate::test_runner::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($config:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strategy:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                let mut rng = $crate::test_runner::TestRng::from_name(stringify!($name));
                for case in 0..config.cases {
                    $(
                        let $arg = $crate::strategy::Strategy::generate(&($strategy), &mut rng);
                    )+
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            $body;
                            ::std::result::Result::Ok(())
                        })();
                    if let ::std::result::Result::Err(err) = outcome {
                        panic!(
                            "proptest {} failed at case {}/{}: {}",
                            stringify!($name),
                            case + 1,
                            config.cases,
                            err
                        );
                    }
                }
            }
        )*
    };
}
