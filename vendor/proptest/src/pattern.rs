//! Generation of strings from the small regex subset proptest accepts as
//! string strategies.
//!
//! Supported syntax (everything the workspace's tests use, and the
//! obvious neighbors): literal characters, escaped literals (`\.`),
//! character classes `[..]` with ranges and literal `-` at the edges,
//! the printable-character class `\PC`, and the quantifiers `*`, `+`,
//! `?`, `{n}` and `{m,n}`. Alternation and grouping are not implemented.

use crate::test_runner::TestRng;

/// Upper repetition bound substituted for the open-ended `*` / `+`
/// quantifiers.
const STAR_MAX: usize = 16;

#[derive(Debug, Clone)]
enum CharSet {
    /// Inclusive codepoint ranges; a single literal is a 1-wide range.
    Ranges(Vec<(char, char)>),
    /// `\PC`: any printable character (no controls, includes non-ASCII).
    Printable,
}

#[derive(Debug, Clone)]
struct Atom {
    set: CharSet,
    min: usize,
    max: usize,
}

/// Generates one string matching `pattern`.
///
/// Panics on syntax this subset does not understand — a test would fail
/// immediately and loudly rather than silently generating wrong inputs.
pub fn generate(pattern: &str, rng: &mut TestRng) -> String {
    let atoms = parse(pattern);
    let mut out = String::new();
    for atom in &atoms {
        let reps = rng.range_inclusive(atom.min, atom.max);
        for _ in 0..reps {
            out.push(sample(&atom.set, rng));
        }
    }
    out
}

/// A few non-ASCII printable characters mixed into `\PC` output so that
/// escaping/round-trip tests see multibyte UTF-8.
const UNICODE_SAMPLES: &[char] = &['é', 'ß', 'α', 'Ω', '→', '☃', '中', '文', '𝄞', '😀'];

fn sample(set: &CharSet, rng: &mut TestRng) -> char {
    match set {
        CharSet::Printable => {
            if rng.below(8) == 0 {
                UNICODE_SAMPLES[rng.below(UNICODE_SAMPLES.len())]
            } else {
                // Printable ASCII: 0x20 ..= 0x7E.
                char::from_u32(0x20 + rng.below(0x5f) as u32).expect("printable ascii")
            }
        }
        CharSet::Ranges(ranges) => {
            // Pick a range uniformly, then a character within it. Exact
            // per-character uniformity is not needed for test inputs.
            let (lo, hi) = ranges[rng.below(ranges.len())];
            let span = hi as u32 - lo as u32 + 1;
            char::from_u32(lo as u32 + (rng.next_u64() % span as u64) as u32)
                .expect("class range stays in valid scalar values")
        }
    }
}

fn parse(pattern: &str) -> Vec<Atom> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut atoms = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let set = match chars[i] {
            '[' => {
                let (set, next) = parse_class(pattern, &chars, i + 1);
                i = next;
                set
            }
            '\\' => {
                i += 1;
                match chars.get(i) {
                    Some('P') | Some('p') => {
                        // \PC — the printable-character class.
                        assert!(
                            chars.get(i + 1) == Some(&'C'),
                            "unsupported escape in pattern {pattern:?}"
                        );
                        i += 2;
                        CharSet::Printable
                    }
                    Some(&c) => {
                        i += 1;
                        CharSet::Ranges(vec![(c, c)])
                    }
                    None => panic!("dangling backslash in pattern {pattern:?}"),
                }
            }
            c => {
                assert!(
                    !"(){}*+?|".contains(c),
                    "unsupported regex syntax {c:?} in pattern {pattern:?}"
                );
                i += 1;
                CharSet::Ranges(vec![(c, c)])
            }
        };
        let (min, max, next) = parse_quantifier(pattern, &chars, i);
        i = next;
        atoms.push(Atom { set, min, max });
    }
    atoms
}

/// Parses the body of a `[...]` class starting at `start` (just past the
/// `[`); returns the set and the index just past the closing `]`.
fn parse_class(pattern: &str, chars: &[char], start: usize) -> (CharSet, usize) {
    let mut ranges = Vec::new();
    let mut i = start;
    assert!(
        chars.get(i) != Some(&'^'),
        "negated classes unsupported in pattern {pattern:?}"
    );
    loop {
        match chars.get(i) {
            None => panic!("unterminated class in pattern {pattern:?}"),
            Some(']') => return (CharSet::Ranges(ranges), i + 1),
            Some(&c) => {
                let c = if c == '\\' {
                    i += 1;
                    *chars
                        .get(i)
                        .unwrap_or_else(|| panic!("dangling backslash in pattern {pattern:?}"))
                } else {
                    c
                };
                // `x-y` is a range unless the `-` is the last character
                // before `]` (then both are literals).
                if chars.get(i + 1) == Some(&'-') && chars.get(i + 2).is_some_and(|&n| n != ']') {
                    let hi = chars[i + 2];
                    assert!(c <= hi, "inverted range in pattern {pattern:?}");
                    ranges.push((c, hi));
                    i += 3;
                } else {
                    ranges.push((c, c));
                    i += 1;
                }
            }
        }
    }
}

/// Parses an optional quantifier at `i`; returns `(min, max, next_index)`.
fn parse_quantifier(pattern: &str, chars: &[char], i: usize) -> (usize, usize, usize) {
    match chars.get(i) {
        Some('*') => (0, STAR_MAX, i + 1),
        Some('+') => (1, STAR_MAX, i + 1),
        Some('?') => (0, 1, i + 1),
        Some('{') => {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .unwrap_or_else(|| panic!("unterminated quantifier in pattern {pattern:?}"))
                + i;
            let body: String = chars[i + 1..close].iter().collect();
            let (min, max) = match body.split_once(',') {
                Some((lo, hi)) => (
                    lo.parse().expect("quantifier lower bound"),
                    hi.parse().expect("quantifier upper bound"),
                ),
                None => {
                    let n = body.parse().expect("quantifier count");
                    (n, n)
                }
            };
            assert!(min <= max, "inverted quantifier in pattern {pattern:?}");
            (min, max, close + 1)
        }
        _ => (1, 1, i),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    fn gen_many(pattern: &str) -> Vec<String> {
        let mut rng = TestRng::from_seed(7);
        (0..200).map(|_| generate(pattern, &mut rng)).collect()
    }

    #[test]
    fn class_with_range_and_quantifier() {
        for s in gen_many("[a-z][a-z0-9._]{0,15}") {
            let mut cs = s.chars();
            let first = cs.next().unwrap();
            assert!(first.is_ascii_lowercase());
            assert!(s.len() <= 16);
            assert!(cs.all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || ".,_".contains(c) || c == '.'));
        }
    }

    #[test]
    fn printable_star() {
        let all = gen_many("\\PC*");
        assert!(all.iter().any(|s| s.is_empty()));
        assert!(all.iter().any(|s| !s.is_ascii()));
        for s in &all {
            assert!(s.chars().all(|c| !c.is_control()));
        }
    }

    #[test]
    fn trailing_dash_is_literal() {
        for s in gen_many("[a-zA-Z0-9_./ -]{0,24}") {
            assert!(s
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || "_./ -".contains(c)));
        }
    }

    #[test]
    fn space_to_tilde_covers_printable_ascii() {
        for s in gen_many("[ -~]{0,32}") {
            assert!(s.chars().all(|c| (' '..='~').contains(&c)));
            assert!(s.len() <= 32);
        }
    }
}
