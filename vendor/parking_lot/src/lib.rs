//! In-workspace stand-in for the `parking_lot` crate.
//!
//! The build environment for this repository is fully offline, so external
//! crates cannot be downloaded from crates.io. This tiny crate provides the
//! subset of the `parking_lot` API the workspace actually uses — `Mutex`
//! and `RwLock` whose guards are returned directly (no `Result`, poisoning
//! is ignored) — implemented on top of the standard-library primitives.
//!
//! Semantics relied upon by the workspace and preserved here:
//!
//! * `Mutex::lock`, `RwLock::read` and `RwLock::write` return guards
//!   directly rather than a `Result`;
//! * a panic while a lock is held does **not** poison it for other
//!   threads (parking_lot has no poisoning; we recover the inner guard);
//! * `new` is `const`, so locks can sit in statics.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::{self, TryLockError};

/// A mutual-exclusion lock with `parking_lot`'s panic-free API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// RAII guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex and returns the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until it is available. Unlike
    /// `std::sync::Mutex`, a previous panic while locked is ignored.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Attempts to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the protected value (no locking
    /// needed — the borrow checker guarantees exclusivity).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock with `parking_lot`'s panic-free API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// Shared RAII guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Exclusive RAII guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock protecting `value`.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock and returns the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard, blocking until no writer holds the
    /// lock. Poisoning from a panicked writer is ignored.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires the exclusive write guard, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Returns a mutable reference to the protected value (no locking
    /// needed — the borrow checker guarantees exclusivity).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_survives_panic() {
        let m = std::sync::Arc::new(Mutex::new(0i32));
        let m2 = std::sync::Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(vec![1, 2]);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }
}
