//! In-workspace stand-in for the `crossbeam` crate.
//!
//! The build environment for this repository is fully offline, so external
//! crates cannot be downloaded from crates.io. This crate re-implements the
//! subset of `crossbeam` the workspace uses: [`channel`] — an unbounded
//! multi-producer **multi-consumer** FIFO channel with disconnect
//! detection, the substrate for both the `mpisim` rank inboxes and the
//! shared work queue of the thread-parallel query engine.
//!
//! The implementation is a `Mutex<VecDeque>` + `Condvar` queue. That is
//! deliberately boring: correctness and API fidelity matter here, not the
//! lock-free performance of the real crate — channel operations are not on
//! any hot path in this workspace (records are aggregated in worker-local
//! databases; channels only carry file-sized work units and final
//! results).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod channel;
