//! An unbounded MPMC FIFO channel, API-compatible with
//! `crossbeam::channel` for the operations this workspace uses.
//!
//! Both [`Sender`] and [`Receiver`] are cloneable; a channel counts its
//! live endpoints so that `recv` on an empty channel with no remaining
//! senders reports disconnection (and symmetrically for `send` with no
//! remaining receivers). This is exactly the protocol `mpisim` relies on
//! to detect ranks shutting down, and what lets the parallel query
//! engine's workers terminate cleanly when the work queue is drained and
//! the producer side is dropped.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};

/// Error returned by [`Sender::send`] when every receiver is gone.
/// Carries the unsent value, like the real crossbeam type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SendError<T>(pub T);

impl<T> std::fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "sending on a disconnected channel")
    }
}

impl<T: std::fmt::Debug> std::error::Error for SendError<T> {}

/// Error returned by [`Receiver::recv`] when the channel is empty and
/// every sender is gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

impl std::fmt::Display for RecvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "receiving on an empty and disconnected channel")
    }
}

impl std::error::Error for RecvError {}

/// Error returned by [`Receiver::try_recv`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    /// The channel is currently empty but senders remain connected.
    Empty,
    /// The channel is empty and all senders have disconnected.
    Disconnected,
}

impl std::fmt::Display for TryRecvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TryRecvError::Empty => write!(f, "receiving on an empty channel"),
            TryRecvError::Disconnected => {
                write!(f, "receiving on an empty and disconnected channel")
            }
        }
    }
}

impl std::error::Error for TryRecvError {}

/// Error returned by [`Receiver::recv_timeout`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvTimeoutError {
    /// No value arrived before the deadline; senders remain connected.
    Timeout,
    /// The channel is empty and all senders have disconnected.
    Disconnected,
}

impl std::fmt::Display for RecvTimeoutError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecvTimeoutError::Timeout => write!(f, "timed out waiting on channel"),
            RecvTimeoutError::Disconnected => {
                write!(f, "receiving on an empty and disconnected channel")
            }
        }
    }
}

impl std::error::Error for RecvTimeoutError {}

struct State<T> {
    queue: VecDeque<T>,
    senders: usize,
    receivers: usize,
}

struct Shared<T> {
    state: Mutex<State<T>>,
    /// Signalled when a value arrives or the last sender disconnects.
    ready: Condvar,
}

impl<T> Shared<T> {
    fn lock(&self) -> std::sync::MutexGuard<'_, State<T>> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }
}

/// The sending half of a channel. Cloneable; `Send + Sync` so it can be
/// shared from an `Arc` across threads (as `mpisim` does with its inbox
/// table).
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

/// The receiving half of a channel. Cloneable — multiple worker threads
/// may pull from the same queue, each value going to exactly one of them.
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

/// Creates an unbounded FIFO channel, returning its two endpoints.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        state: Mutex::new(State {
            queue: VecDeque::new(),
            senders: 1,
            receivers: 1,
        }),
        ready: Condvar::new(),
    });
    (
        Sender {
            shared: Arc::clone(&shared),
        },
        Receiver { shared },
    )
}

impl<T> Sender<T> {
    /// Enqueues `value`. Never blocks (the channel is unbounded); fails
    /// only if every [`Receiver`] has been dropped.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        let mut state = self.shared.lock();
        if state.receivers == 0 {
            return Err(SendError(value));
        }
        state.queue.push_back(value);
        drop(state);
        self.shared.ready.notify_one();
        Ok(())
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.shared.lock().senders += 1;
        Sender {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut state = self.shared.lock();
        state.senders -= 1;
        let last = state.senders == 0;
        drop(state);
        if last {
            // Wake all blocked receivers so they observe the disconnect.
            self.shared.ready.notify_all();
        }
    }
}

impl<T> Receiver<T> {
    /// Dequeues the next value, blocking while the channel is empty.
    /// Returns [`RecvError`] once the channel is empty *and* every
    /// sender has disconnected.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut state = self.shared.lock();
        loop {
            if let Some(value) = state.queue.pop_front() {
                return Ok(value);
            }
            if state.senders == 0 {
                return Err(RecvError);
            }
            state = self
                .shared
                .ready
                .wait(state)
                .unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Like [`recv`](Receiver::recv), but gives up once `timeout` has
    /// elapsed without a value arriving. The substrate for `mpisim`'s
    /// fault-tolerant receives: a peer that died without dropping its
    /// channel endpoints never disconnects, it just goes silent.
    pub fn recv_timeout(&self, timeout: std::time::Duration) -> Result<T, RecvTimeoutError> {
        let deadline = std::time::Instant::now() + timeout;
        let mut state = self.shared.lock();
        loop {
            if let Some(value) = state.queue.pop_front() {
                return Ok(value);
            }
            if state.senders == 0 {
                return Err(RecvTimeoutError::Disconnected);
            }
            let now = std::time::Instant::now();
            if now >= deadline {
                return Err(RecvTimeoutError::Timeout);
            }
            let (guard, _timed_out) = self
                .shared
                .ready
                .wait_timeout(state, deadline - now)
                .unwrap_or_else(|e| e.into_inner());
            state = guard;
        }
    }

    /// Non-blocking variant of [`recv`](Receiver::recv).
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut state = self.shared.lock();
        match state.queue.pop_front() {
            Some(value) => Ok(value),
            None if state.senders == 0 => Err(TryRecvError::Disconnected),
            None => Err(TryRecvError::Empty),
        }
    }

    /// A blocking iterator over received values; ends on disconnect.
    pub fn iter(&self) -> Iter<'_, T> {
        Iter { receiver: self }
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.shared.lock().receivers += 1;
        Receiver {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        self.shared.lock().receivers -= 1;
    }
}

/// Blocking iterator returned by [`Receiver::iter`].
pub struct Iter<'a, T> {
    receiver: &'a Receiver<T>,
}

impl<T> Iterator for Iter<'_, T> {
    type Item = T;

    fn next(&mut self) -> Option<T> {
        self.receiver.recv().ok()
    }
}

impl<'a, T> IntoIterator for &'a Receiver<T> {
    type Item = T;
    type IntoIter = Iter<'a, T>;

    fn into_iter(self) -> Iter<'a, T> {
        self.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order() {
        let (tx, rx) = unbounded();
        for i in 0..10 {
            tx.send(i).unwrap();
        }
        let got: Vec<i32> = (0..10).map(|_| rx.recv().unwrap()).collect();
        assert_eq!(got, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn recv_reports_disconnect() {
        let (tx, rx) = unbounded::<i32>();
        tx.send(1).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn send_reports_disconnect() {
        let (tx, rx) = unbounded::<i32>();
        drop(rx);
        assert_eq!(tx.send(7), Err(SendError(7)));
    }

    #[test]
    fn mpmc_distributes_all_values() {
        let (tx, rx) = unbounded::<usize>();
        let workers: Vec<_> = (0..4)
            .map(|_| {
                let rx = rx.clone();
                std::thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Ok(v) = rx.recv() {
                        got.push(v);
                    }
                    got
                })
            })
            .collect();
        drop(rx);
        for i in 0..1000 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let mut all: Vec<usize> = workers
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        all.sort_unstable();
        assert_eq!(all, (0..1000).collect::<Vec<_>>());
    }

    #[test]
    fn recv_timeout_times_out_and_still_delivers() {
        let (tx, rx) = unbounded::<i32>();
        let t0 = std::time::Instant::now();
        assert_eq!(
            rx.recv_timeout(std::time::Duration::from_millis(30)),
            Err(RecvTimeoutError::Timeout)
        );
        assert!(t0.elapsed() >= std::time::Duration::from_millis(30));
        tx.send(5).unwrap();
        assert_eq!(rx.recv_timeout(std::time::Duration::from_millis(30)), Ok(5));
        drop(tx);
        assert_eq!(
            rx.recv_timeout(std::time::Duration::from_millis(30)),
            Err(RecvTimeoutError::Disconnected)
        );
    }

    #[test]
    fn blocked_receiver_wakes_on_send() {
        let (tx, rx) = unbounded::<i32>();
        let h = std::thread::spawn(move || rx.recv());
        std::thread::sleep(std::time::Duration::from_millis(20));
        tx.send(42).unwrap();
        assert_eq!(h.join().unwrap(), Ok(42));
    }
}
