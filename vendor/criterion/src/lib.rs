//! In-workspace stand-in for the `criterion` benchmarking crate.
//!
//! The build environment for this repository is fully offline, so
//! external crates cannot be downloaded from crates.io. This crate
//! provides the subset of the criterion API the workspace's benches use
//! — `criterion_group!` / `criterion_main!`, `Criterion::benchmark_group`,
//! `BenchmarkGroup::{throughput, sample_size, bench_function, finish}`,
//! `BenchmarkId::new` and `Bencher::iter` — backed by a simple
//! wall-clock measurement loop instead of criterion's statistical
//! machinery.
//!
//! Measurement model: each `Bencher::iter` target gets a short warm-up,
//! then runs for a fixed time budget (`CRITERION_MEASURE_MS` env var,
//! default 120 ms) or at least three iterations, whichever is longer.
//! The mean ns/iteration and derived throughput are printed to stdout in
//! a stable, greppable one-line format:
//!
//! ```text
//! bench  group/function/param  1234 ns/iter  (81.0 Melem/s)
//! ```
//!
//! A positional command-line filter (as passed by
//! `cargo bench -- <substr>`) restricts which benchmarks run, matching
//! by substring on the full `group/function` id.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Top-level benchmark driver. One per bench binary, created by the
/// `criterion_group!` expansion.
pub struct Criterion {
    filter: Option<String>,
    measure: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo bench -- <filter>` forwards everything after `--` to the
        // bench binary; cargo itself also passes `--bench`. Take the
        // first non-flag argument as a substring filter.
        let filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with('-'));
        let measure_ms = std::env::var("CRITERION_MEASURE_MS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(120);
        Criterion {
            filter,
            measure: Duration::from_millis(measure_ms),
        }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }

    /// Runs a standalone benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into().full();
        run_one(self, None, &id, f);
        self
    }
}

/// Identifies one benchmark: a function name plus an optional
/// parameter rendered into the id (`function/param`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id for `function_name` parameterized by `parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    fn full(&self) -> String {
        self.id.clone()
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        BenchmarkId {
            id: name.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        BenchmarkId { id }
    }
}

/// Units for reporting throughput alongside time per iteration.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// The benchmark processes this many logical elements per iteration.
    Elements(u64),
    /// The benchmark processes this many bytes per iteration.
    Bytes(u64),
}

/// A group of related benchmarks sharing throughput settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-iteration throughput used for derived rates.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Accepted for API compatibility; the stand-in sizes its run by a
    /// time budget rather than a sample count.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Measures `f` under this group's settings.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = format!("{}/{}", self.name, id.into().full());
        let throughput = self.throughput;
        run_one(self.criterion, throughput, &id, f);
        self
    }

    /// Ends the group (no-op; present for API compatibility).
    pub fn finish(self) {}
}

fn run_one<F>(criterion: &Criterion, throughput: Option<Throughput>, id: &str, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    if let Some(filter) = &criterion.filter {
        if !id.contains(filter.as_str()) {
            return;
        }
    }
    let mut bencher = Bencher {
        measure: criterion.measure,
        iters: 0,
        elapsed: Duration::ZERO,
    };
    f(&mut bencher);
    if bencher.iters == 0 {
        println!("bench  {id}  (no measurement — Bencher::iter never called)");
        return;
    }
    let ns = bencher.elapsed.as_nanos() as f64 / bencher.iters as f64;
    let rate = throughput.map(|t| match t {
        Throughput::Elements(n) => format_rate(n as f64 * 1e9 / ns, "elem/s"),
        Throughput::Bytes(n) => format_rate(n as f64 * 1e9 / ns, "B/s"),
    });
    match rate {
        Some(rate) => println!("bench  {id}  {}  ({rate})", format_ns(ns)),
        None => println!("bench  {id}  {}", format_ns(ns)),
    }
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s/iter", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms/iter", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs/iter", ns / 1e3)
    } else {
        format!("{ns:.1} ns/iter")
    }
}

fn format_rate(per_s: f64, unit: &str) -> String {
    if per_s >= 1e9 {
        format!("{:.2} G{unit}", per_s / 1e9)
    } else if per_s >= 1e6 {
        format!("{:.2} M{unit}", per_s / 1e6)
    } else if per_s >= 1e3 {
        format!("{:.2} k{unit}", per_s / 1e3)
    } else {
        format!("{per_s:.1} {unit}")
    }
}

/// Passed to the benchmark closure; [`iter`](Bencher::iter) runs and
/// times the measured routine.
pub struct Bencher {
    measure: Duration,
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times repeated calls of `routine` until the measurement budget is
    /// spent (at least 3 iterations), recording the mean.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up: one untimed call (fills caches, triggers lazy init).
        std::hint::black_box(routine());
        let start = Instant::now();
        let mut iters = 0u64;
        loop {
            std::hint::black_box(routine());
            iters += 1;
            let elapsed = start.elapsed();
            if (elapsed >= self.measure && iters >= 3) || iters >= 10_000_000 {
                self.iters = iters;
                self.elapsed = elapsed;
                return;
            }
        }
    }
}

/// Declares a benchmark group function invoking each target with a
/// fresh default [`Criterion`].
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench binary's `main`, running each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
