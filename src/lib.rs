//! # caliper-repro — flexible data aggregation for performance profiling
//!
//! A from-scratch Rust reproduction of *"Flexible Data Aggregation for
//! Performance Profiling"* (David Böhme, David Beckingsale, Martin
//! Schulz — IEEE CLUSTER 2017), the paper describing Caliper's
//! customizable aggregation system.
//!
//! This facade crate re-exports the workspace:
//!
//! | crate | contents |
//! |---|---|
//! | [`data`] | flexible key:value data model, context tree, records |
//! | [`mod@format`] | `.cali` stream codec, dataset, output formatters |
//! | [`query`] | the aggregation description language + streaming engine |
//! | [`runtime`] | blackboard, annotation API, snapshots, services |
//! | [`mpi`] | simulated MPI substrate (threads as ranks) |
//! | [`apps`] | CleverLeaf proxy + ParaDiS dataset generator |
//!
//! ## Quickstart
//!
//! ```
//! use caliper_repro::prelude::*;
//!
//! // Configure on-line event aggregation — the paper's §III-B scheme.
//! let config = Config::event_aggregate(
//!     "function,loop.iteration",
//!     "count,sum(time.duration)",
//! );
//! let caliper = Caliper::with_clock(config, Clock::virtual_clock());
//! let function = caliper.region_attribute("function");
//! let iteration = caliper.attribute(
//!     "loop.iteration",
//!     ValueType::Int,
//!     Properties::AS_VALUE,
//! );
//!
//! // The annotated program from Listing 1.
//! let mut scope = caliper.make_thread_scope();
//! for i in 0..4i64 {
//!     scope.begin(&iteration, i);
//!     for (name, us) in [("foo", 10u64), ("foo", 30), ("bar", 10)] {
//!         scope.begin(&function, name);
//!         scope.advance_time(us * 1_000);
//!         scope.end(&function).unwrap();
//!     }
//!     scope.end(&iteration).unwrap();
//! }
//! scope.flush();
//!
//! // Off-line analytical aggregation over the collected profile.
//! let profile = caliper.take_dataset();
//! let result = run_query(
//!     &profile,
//!     "SELECT function, loop.iteration, sum(sum#time.duration) \
//!      WHERE function GROUP BY function, loop.iteration",
//! ).unwrap();
//! println!("{}", result.render());
//! assert_eq!(result.records.len(), 8); // 2 functions x 4 iterations
//! ```

#![forbid(unsafe_code)]

pub use caliper_data as data;
pub use caliper_format as format;
pub use caliper_query as query;
pub use caliper_runtime as runtime;
pub use miniapps as apps;
pub use mpisim as mpi;

/// Convenient glob import for examples and tests.
pub mod prelude {
    pub use caliper_data::{
        AttrId, Attribute, AttributeStore, ContextTree, Entry, FlatRecord, Properties,
        RecordBuilder, SnapshotRecord, Value, ValueType, NODE_NONE,
    };
    pub use caliper_format::{cali, Dataset, Table};
    pub use caliper_query::{
        parse_query, run_query, AggregationSpec, Aggregator, OutputFormat, Pipeline, QueryResult,
    };
    pub use caliper_runtime::{Annotation, Caliper, Clock, Config, ThreadScope};
    pub use miniapps::{CleverLeaf, CleverLeafParams, ParaDisParams, WorkMode};
}
